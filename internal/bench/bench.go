// Package bench is the repository's benchmark subsystem: a pinned
// suite of admission scenarios — single admissions per generator
// profile, AdmitAll batches, readmission after faults, churn-simulator
// steady state, and the alternate phase strategies — measured with
// fixed, deterministic iteration counts and reported as ns/op, B/op,
// allocs/op and admission throughput.
//
// The paper sells Kairos on run-time admission speed (the per-phase
// run times of Fig. 7 are the headline evidence); this package is how
// the reproduction tracks its own. cmd/bench runs the suite and emits
// a machine-readable BENCH_<git-sha>.json per revision — the repo's
// performance trajectory — and CI compares head against base with
// Compare to gate regressions (see EXPERIMENTS.md §5).
//
// Unlike `go test -bench`, iteration counts never adapt to wall-clock
// time: for a fixed seed and mode, two runs execute the identical
// scenario set with identical ops and admission-attempt counts, so
// every field of the report except the timing-derived ones is
// byte-reproducible (the determinism tests pin this).
package bench

import (
	"encoding/json"
	"fmt"
	"regexp"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"
)

// Schema is the current BENCH_*.json schema version. Bump it when the
// Report shape changes incompatibly; the CI gate refuses to compare
// reports across schema versions.
const Schema = 1

// Scenario is one named case of the benchmark suite.
type Scenario struct {
	// Name identifies the scenario, e.g. "admit/communication-small".
	Name string
	// Group is the scenario family, e.g. "admit" or "strategy".
	Group string
	// Ops is the fixed iteration count. It never adapts to timing.
	Ops int
	// Prepare builds the scenario state (excluded from measurement)
	// and returns the op to measure. The op reports how many admission
	// workflow attempts it performed, the basis of the throughput
	// metric.
	Prepare func() (func() (attempts int, err error), error)
	// Cleanup, when non-nil, releases resources Prepare acquired
	// (scratch directories and the like). It runs after the measured
	// loop, and also when Prepare or the op fails.
	Cleanup func()
	// Procs, when positive, overrides the suite's GOMAXPROCS=1 pinning
	// for this scenario. Contended scenarios (the "contend" group) use
	// it: they measure multi-admitter throughput, which needs real
	// parallelism. Their timing metrics are inherently host- and
	// scheduler-dependent, so Compare exempts the group from its gates.
	Procs int
}

// Measurement is the result of running one scenario.
type Measurement struct {
	Name  string `json:"name"`
	Group string `json:"group"`
	// Ops and Attempts are deterministic for a fixed seed and mode.
	Ops      int `json:"ops"`
	Attempts int `json:"attempts"`
	// Timing-derived metrics; host-dependent, excluded from the
	// determinism comparison.
	NsPerOp      int64   `json:"nsPerOp"`
	BytesPerOp   int64   `json:"bytesPerOp"`
	AllocsPerOp  int64   `json:"allocsPerOp"`
	AdmitsPerSec float64 `json:"admitsPerSec"`
}

// Report is the outcome of one suite run: the BENCH_<sha>.json
// payload.
type Report struct {
	Schema    int           `json:"schema"`
	SHA       string        `json:"sha"`
	GoVersion string        `json:"goVersion"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Quick     bool          `json:"quick"`
	Seed      int64         `json:"seed"`
	Scenarios []Measurement `json:"scenarios"`
}

// Marshal renders the report as indented JSON with a trailing newline
// (the exact bytes cmd/bench writes).
func (r *Report) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// UnmarshalReport parses a BENCH_*.json payload.
func UnmarshalReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: bad report: %w", err)
	}
	return &r, nil
}

// Logf is a progress callback; nil discards progress.
type Logf func(format string, args ...any)

// Run measures every scenario in order and assembles the report
// skeleton (SHA is the caller's to fill in). A scenario whose Prepare
// or op fails aborts the run: a suite that cannot run to completion
// must not produce a trajectory point.
//
// The suite is single-goroutine by construction (serial harness
// paths, one live manager), so Run pins GOMAXPROCS to 1 for the
// duration: on multiple Ps the scheduler may migrate the goroutine
// mid-scenario, and a sync.Pool Put parked in another P's private
// slot is invisible to Get — allocs/op would then depend on scheduler
// timing rather than on the code under test.
func Run(scenarios []Scenario, quick bool, seed int64, logf Logf) (*Report, error) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	rep := &Report{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     quick,
		Seed:      seed,
	}
	for _, sc := range scenarios {
		m, err := runScenario(sc)
		if err != nil {
			return nil, fmt.Errorf("bench: scenario %s: %w", sc.Name, err)
		}
		if logf != nil {
			logf("%-28s %8d ops %12d ns/op %8d B/op %6d allocs/op %10.1f admits/s",
				m.Name, m.Ops, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp, m.AdmitsPerSec)
		}
		rep.Scenarios = append(rep.Scenarios, m)
	}
	return rep, nil
}

// runScenario measures one scenario with fixed iterations: ns/op from
// the wall clock, B/op and allocs/op from the runtime's monotonic
// allocation counters. The garbage collector is paused for the
// measured loop — a GC cycle mid-loop flushes the sync.Pools the hot
// path relies on, which would re-allocate pooled scratch and make
// allocs/op depend on GC timing instead of the code under test. Every
// scenario's working set is tens of megabytes at most, so the pause is
// safe; the pre-loop runtime.GC keeps scenarios from billing each
// other's garbage.
func runScenario(sc Scenario) (Measurement, error) {
	m := Measurement{Name: sc.Name, Group: sc.Group, Ops: sc.Ops}
	if sc.Ops <= 0 {
		return m, fmt.Errorf("non-positive ops %d", sc.Ops)
	}
	if sc.Procs > 0 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(sc.Procs))
	}
	if sc.Cleanup != nil {
		defer sc.Cleanup()
	}
	op, err := sc.Prepare()
	if err != nil {
		return m, err
	}
	runtime.GC()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// One untimed warmup op: it repopulates the scratch pools the GC
	// flushed between scenarios and triggers lazy one-time work
	// (adjacency caches and the like), so the measured loop sees the
	// steady state and allocs/op is exact, not GC-phase-dependent.
	if _, err := op(); err != nil {
		return m, fmt.Errorf("warmup op: %w", err)
	}
	// The ops are split into up to five equal batches and ns/op is
	// the fastest batch's per-op time: the minimum is far more robust
	// to transient host noise (a scheduler hiccup inflates one batch,
	// not all of them) than the mean, which is what a CI regression
	// gate needs. Allocation counters cover the whole loop — they are
	// deterministic and need no noise defence.
	batches := sc.Ops
	if batches > 5 {
		batches = 5
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	bestNs := int64(0)
	done := 0
	for b := 0; b < batches; b++ {
		n := sc.Ops / batches
		if b < sc.Ops%batches {
			n++
		}
		batchStart := time.Now()
		for i := 0; i < n; i++ {
			a, err := op()
			if err != nil {
				return m, fmt.Errorf("op %d: %w", done+i, err)
			}
			m.Attempts += a
		}
		done += n
		perOp := time.Since(batchStart).Nanoseconds() / int64(n)
		if bestNs == 0 || perOp < bestNs {
			bestNs = perOp
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	ops := int64(sc.Ops)
	m.NsPerOp = bestNs
	m.BytesPerOp = int64(after.TotalAlloc-before.TotalAlloc) / ops
	m.AllocsPerOp = int64(after.Mallocs-before.Mallocs) / ops
	if secs := elapsed.Seconds(); secs > 0 {
		m.AdmitsPerSec = float64(m.Attempts) / secs
	}
	return m, nil
}

// Filter returns the scenarios whose name matches the regular
// expression (all of them for an empty pattern).
func Filter(scenarios []Scenario, pattern string) ([]Scenario, error) {
	if pattern == "" {
		return scenarios, nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("bench: bad filter %q: %w", pattern, err)
	}
	var out []Scenario
	for _, sc := range scenarios {
		if re.MatchString(sc.Name) {
			out = append(out, sc)
		}
	}
	return out, nil
}

// FormatTable renders the human-readable results table.
func FormatTable(r *Report) string {
	var b strings.Builder
	mode := "full"
	if r.Quick {
		mode = "quick"
	}
	fmt.Fprintf(&b, "bench %s suite, seed %d, %s %s/%s, rev %s\n\n",
		mode, r.Seed, r.GoVersion, r.GOOS, r.GOARCH, r.SHA)
	fmt.Fprintf(&b, "%-28s %8s %14s %10s %10s %12s\n",
		"scenario", "ops", "ns/op", "B/op", "allocs/op", "admits/s")
	for _, m := range r.Scenarios {
		fmt.Fprintf(&b, "%-28s %8d %14d %10d %10d %12.1f\n",
			m.Name, m.Ops, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp, m.AdmitsPerSec)
	}
	return b.String()
}

// Regression is one gate violation found by Compare.
type Regression struct {
	Scenario string
	Metric   string // "nsPerOp", "allocsPerOp", "missing"
	Old, New float64
	// Limit is the largest acceptable New for the given Old.
	Limit float64
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: scenario missing from the new report", r.Scenario)
	}
	return fmt.Sprintf("%s: %s %.0f -> %.0f (limit %.0f)",
		r.Scenario, r.Metric, r.Old, r.New, r.Limit)
}

// Compare gates a new report against an old one: ns/op may grow by at
// most the tolerance fraction (e.g. 0.15 for +15%), allocs/op may not
// grow beyond a fixed noise floor of max(2, 0.5%) — the workload's
// allocation counts are deterministic (fixed ops, GC paused, one P),
// but background runtime activity can bleed ≤2 allocations into a
// long scenario, while a genuinely regressed hot path shows tens per
// op — and every old scenario must still exist. Scenarios only
// present in the new report are ignored — new scenarios have no
// baseline. Reports from different schema versions or with different
// quick/seed settings are incomparable.
func Compare(old, new *Report, tolerance float64) ([]Regression, error) {
	if old.Schema != new.Schema {
		return nil, fmt.Errorf("bench: schema mismatch: old %d vs new %d", old.Schema, new.Schema)
	}
	if old.Quick != new.Quick || old.Seed != new.Seed {
		return nil, fmt.Errorf("bench: incomparable runs: old quick=%v seed=%d, new quick=%v seed=%d",
			old.Quick, old.Seed, new.Quick, new.Seed)
	}
	byName := make(map[string]Measurement, len(new.Scenarios))
	for _, m := range new.Scenarios {
		byName[m.Name] = m
	}
	var regs []Regression
	for _, o := range old.Scenarios {
		n, ok := byName[o.Name]
		if !ok {
			regs = append(regs, Regression{Scenario: o.Name, Metric: "missing"})
			continue
		}
		if o.Group == "contend" {
			// Contended scenarios run with GOMAXPROCS > 1 and multiple
			// admitter goroutines: their timings and allocation counts
			// depend on the scheduler, so per-metric gates would flake.
			// They are still required to exist (the check above) and the
			// CI bench job asserts their throughput ratios separately.
			continue
		}
		if limit := float64(o.NsPerOp) * (1 + tolerance); float64(n.NsPerOp) > limit {
			regs = append(regs, Regression{
				Scenario: o.Name, Metric: "nsPerOp",
				Old: float64(o.NsPerOp), New: float64(n.NsPerOp), Limit: limit,
			})
		}
		allocLimit := o.AllocsPerOp + max(2, o.AllocsPerOp/200)
		if n.AllocsPerOp > allocLimit {
			regs = append(regs, Regression{
				Scenario: o.Name, Metric: "allocsPerOp",
				Old: float64(o.AllocsPerOp), New: float64(n.AllocsPerOp), Limit: float64(allocLimit),
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Scenario != regs[j].Scenario {
			return regs[i].Scenario < regs[j].Scenario
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs, nil
}

// FormatComparison renders a side-by-side old/new table plus the
// regression verdict.
func FormatComparison(old, new *Report, regs []Regression, tolerance float64) string {
	var b strings.Builder
	byName := make(map[string]Measurement, len(new.Scenarios))
	for _, m := range new.Scenarios {
		byName[m.Name] = m
	}
	fmt.Fprintf(&b, "%-28s %14s %14s %8s %10s %10s\n",
		"scenario", "old ns/op", "new ns/op", "Δ%", "old allocs", "new allocs")
	for _, o := range old.Scenarios {
		n, ok := byName[o.Name]
		if !ok {
			fmt.Fprintf(&b, "%-28s %14d %14s\n", o.Name, o.NsPerOp, "(missing)")
			continue
		}
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = 100 * (float64(n.NsPerOp) - float64(o.NsPerOp)) / float64(o.NsPerOp)
		}
		fmt.Fprintf(&b, "%-28s %14d %14d %+7.1f%% %10d %10d\n",
			o.Name, o.NsPerOp, n.NsPerOp, delta, o.AllocsPerOp, n.AllocsPerOp)
	}
	if len(regs) == 0 {
		fmt.Fprintf(&b, "\nOK: no regressions (ns/op tolerance %.0f%%, allocs/op within noise floor)\n", tolerance*100)
		return b.String()
	}
	fmt.Fprintf(&b, "\nREGRESSIONS (%d):\n", len(regs))
	for _, r := range regs {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return b.String()
}
