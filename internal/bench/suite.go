package bench

import (
	"context"
	"fmt"
	"os"
	"sync"

	"repro/internal/appgen"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/rebalance"
	"repro/internal/replan"
	"repro/internal/sim"
	"repro/internal/wal"
	"repro/kairos"
)

// Options parameterizes Suite.
type Options struct {
	// Quick divides every scenario's iteration count for the CI gate
	// (same scenario set, fewer ops).
	Quick bool
	// Seed drives every random draw: dataset generation, sequence
	// shuffles, the churn simulator. Two Suite calls with equal
	// options build the identical suite.
	Seed int64
}

// ops picks the iteration count for a scenario: full or quick.
func (o Options) ops(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// Suite builds the pinned benchmark suite. The scenario set and every
// Ops count depend only on the options, never on timing — that is
// what makes BENCH_*.json files comparable across revisions.
func Suite(opts Options) []Scenario {
	var scs []Scenario

	// Single Admit (plus the Release restoring the platform) for one
	// representative, filter-surviving application of each generator
	// profile, on a warm manager: the paper's per-phase run-time
	// measurements (Fig. 7) as a trajectory metric.
	for _, prof := range []appgen.Profile{appgen.Communication, appgen.Computation} {
		for _, size := range []appgen.Size{appgen.Small, appgen.Medium, appgen.Large} {
			scs = append(scs, admitScenario(prof, size, opts))
		}
	}

	// AdmitAll batches: the batch admission path under increasing
	// load, far past platform saturation at 1000.
	for _, n := range []int{10, 100, 1000} {
		scs = append(scs, admitAllScenario(n, opts))
	}

	scs = append(scs, readmitScenario(opts), churnScenario(opts))

	// The alternate phase strategies, one admission each: the ablation
	// surface of DESIGN.md §5 as part of the trajectory.
	scs = append(scs,
		strategyScenario("binder-exact", opts, kairos.WithBinder(mustBinder("exact"))),
		strategyScenario("mapper-gap", opts, kairos.WithMapper(mustMapper("gap"))),
		strategyScenario("mapper-firstfit", opts, kairos.WithMapper(mustMapper("firstfit"))),
		strategyScenario("router-dijkstra", opts, kairos.WithRouter(mustRouter("dijkstra"))),
	)

	// Cluster admission: one placement-and-admit through kairos.Cluster
	// at increasing shard counts (the planning step scans every shard's
	// load gauge, so ns/op tracks the scale-out overhead), plus the
	// placement-policy variants at a fixed 16 shards.
	for _, shards := range []int{4, 16, 64} {
		scs = append(scs, clusterScenario(
			fmt.Sprintf("cluster/admit-%dshards", shards), shards, kairos.PlacementLeastLoaded, opts))
	}
	for _, pol := range []kairos.PlacementPolicy{
		kairos.PlacementLeastLoaded, kairos.PlacementFirstFit, kairos.PlacementPowerOfTwo,
	} {
		scs = append(scs, clusterScenario("cluster/place-"+pol.Name(), 16, pol, opts))
	}

	// Elasticity: the decommission path (drain a packed shard and
	// rehome its residents) and the steady-state serving regime with
	// the background rebalancer migrating load off hot shards.
	scs = append(scs, drainScenario(opts), rebalanceScenario(opts))

	// Layout cache: the same admit+release op with the cache disabled
	// (cold: every op pays bind+map+route) and enabled-and-warmed
	// (hot: every op replays the memoized layout). The pair is the
	// regression gate on the cache fast-path — hot must stay an order
	// of magnitude under cold. Validation is off in both, so the
	// comparison isolates the three cached phases.
	scs = append(scs, cacheScenario(false, opts), cacheScenario(true, opts))

	// Crash-recovery replay: one full kairos.Recover boot from a durable
	// admission log, at two log depths. Restart time is availability —
	// the durability layer (DESIGN.md §8) re-executes every logged op,
	// so this tracks how long a kairosd reboot takes per logged op.
	scs = append(scs, recoveryScenario(1_000, opts), recoveryScenario(10_000, opts))

	// Contended admission: N admitter goroutines hammering one shard
	// with admit+release, optimistic admission on — the tentpole's
	// scaling claim — plus the serialized 4-admitter baseline the CI
	// bench job ratios admit-4 against. The group runs un-pinned
	// (Procs) and is exempt from Compare's per-metric gates; the
	// admits/s column is the signal.
	for _, n := range []int{1, 4, 16} {
		scs = append(scs, contendScenario(fmt.Sprintf("contend/admit-%d", n), n, true, opts))
	}
	scs = append(scs, contendScenario("contend/admit-serial4", 4, false, opts))

	// Offline replanning: one budgeted LNS pass over a freshly
	// fragmented manager, at a small and the default budget — the cost
	// of the maintenance window DESIGN.md §12 describes, and how it
	// scales with the move budget.
	scs = append(scs, replanScenario(8, opts), replanScenario(64, opts))
	return scs
}

// replanScenario: one op builds a fragmented manager — fill with
// small communication apps, release every other — and runs a single
// budgeted replanning pass. Attempts counts candidate moves evaluated,
// so ns/op over attempts is the per-candidate cost of the LNS search.
// The rebuild keeps ops independent: a pass leaves the platform
// compacted, so re-running on the same manager would measure the
// cheap nothing-to-do path instead.
func replanScenario(budget int, opts Options) Scenario {
	return Scenario{
		Name:  fmt.Sprintf("replan/steady-budget%d", budget),
		Group: "replan",
		Ops:   opts.ops(30, 10),
		Prepare: func() (func() (int, error), error) {
			gen := appgen.New(appgen.NewConfig(appgen.Communication, appgen.Small), opts.Seed+31)
			var apps []*graph.Application
			for i := 0; i < 12; i++ {
				apps = append(apps, gen.Next())
			}
			ctx := context.Background()
			return func() (int, error) {
				m := kairos.New(platform.CRISP(),
					kairos.WithoutValidation(),
					kairos.WithReplanner(replan.LNS{Seed: opts.Seed}),
				)
				var admitted []string
				for _, app := range apps {
					if adm, err := m.Admit(ctx, app); err == nil {
						admitted = append(admitted, adm.Instance)
					}
				}
				for i := 0; i < len(admitted); i += 2 {
					if err := m.Release(admitted[i]); err != nil {
						return 0, err
					}
				}
				res, err := m.ReplanWithBudget(ctx, budget)
				if err != nil {
					return 0, err
				}
				return res.Evaluated, nil
			}, nil
		},
	}
}

// contendScenario: one op is a round of admit+release churn by
// `admitters` concurrent goroutines against a single manager — the
// intra-shard contention the optimistic protocol targets. Every
// admitter runs a fixed number of admissions per round, so Attempts is
// deterministic; capacity rejections under peak concurrency are part
// of the workload, not errors. The admitters draw from different
// generator profiles so their plans spread over the platform instead
// of racing for one "best" element every time.
func contendScenario(name string, admitters int, optimistic bool, opts Options) Scenario {
	const perAdmitter = 10
	return Scenario{
		Name:  name,
		Group: "contend",
		Ops:   opts.ops(30, 10),
		Procs: admitters,
		Prepare: func() (func() (int, error), error) {
			profiles := []appgen.Profile{appgen.Communication, appgen.Computation}
			sizes := []appgen.Size{appgen.Small, appgen.Medium}
			apps := make([]*graph.Application, admitters)
			for i := range apps {
				app, err := sampleApp(profiles[i%2], sizes[(i/2)%2], opts.Seed+int64(i/4))
				if err != nil {
					return nil, err
				}
				apps[i] = app
			}
			kopts := []kairos.Option{
				kairos.WithWeights(kairos.WeightsBoth),
				kairos.WithAdvisoryValidation(),
			}
			if optimistic {
				kopts = append(kopts, kairos.WithOptimisticAdmission(4))
			}
			k := kairos.New(platform.CRISP(), kopts...)
			ctx := context.Background()
			return func() (int, error) {
				var wg sync.WaitGroup
				errc := make(chan error, admitters)
				for g := 0; g < admitters; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; i < perAdmitter; i++ {
							adm, err := k.Admit(ctx, apps[g])
							if err != nil {
								continue // transient capacity rejection under peak concurrency
							}
							if err := k.Release(adm.Instance); err != nil {
								errc <- err
								return
							}
						}
					}(g)
				}
				wg.Wait()
				close(errc)
				for err := range errc {
					return 0, err
				}
				return admitters * perAdmitter, nil
			}, nil
		},
	}
}

// clusterScenario: one cluster Admit (placement plan + shard workflow)
// followed by the Release restoring the cluster to empty. Attempts per
// op counts shards tried, which is deterministically 1 on an idle
// cluster.
func clusterScenario(name string, shards int, pol kairos.PlacementPolicy, opts Options) Scenario {
	return Scenario{
		Name:  name,
		Group: "cluster",
		Ops:   opts.ops(100, 50),
		Prepare: func() (func() (int, error), error) {
			app, err := sampleApp(appgen.Communication, appgen.Medium, opts.Seed)
			if err != nil {
				return nil, err
			}
			c, err := kairos.NewCluster(shards,
				func(int) *platform.Platform { return platform.CRISP() },
				kairos.WithPlacement(pol),
				kairos.WithClusterSeed(opts.Seed),
				kairos.WithShardOptions(
					kairos.WithWeights(kairos.WeightsBoth),
					kairos.WithAdvisoryValidation(),
				),
			)
			if err != nil {
				return nil, err
			}
			ctx := context.Background()
			return func() (int, error) {
				adm, err := c.Admit(ctx, app)
				if err != nil {
					return 1, err
				}
				return adm.Attempts, c.Release(adm.Instance)
			}, nil
		},
	}
}

func mustBinder(name string) kairos.Binder {
	b, err := kairos.BinderByName(name)
	if err != nil {
		panic(err)
	}
	return b
}

func mustMapper(name string) kairos.Mapper {
	m, err := kairos.MapperByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

func mustRouter(name string) kairos.Router {
	r, err := kairos.RouterByName(name)
	if err != nil {
		panic(err)
	}
	return r
}

// sampleApp returns the first application of the profile that survives
// the empty-platform filter (as the paper's datasets are filtered), or
// an error when the sample contains none.
func sampleApp(prof appgen.Profile, size appgen.Size, seed int64) (*graph.Application, error) {
	proto := platform.CRISP()
	ds := experiments.BuildDataset(appgen.NewConfig(prof, size), 20, seed+7, proto, 1)
	if len(ds.Apps) == 0 {
		return nil, fmt.Errorf("no filter-surviving %s-%s app in the sample", prof, size)
	}
	return ds.Apps[0], nil
}

// admitScenario: Admit followed by Release on a warm manager; the
// platform returns to empty after every op.
func admitScenario(prof appgen.Profile, size appgen.Size, opts Options) Scenario {
	return Scenario{
		Name:  fmt.Sprintf("admit/%s-%s", prof, size),
		Group: "admit",
		Ops:   opts.ops(200, 100),
		Prepare: func() (func() (int, error), error) {
			app, err := sampleApp(prof, size, opts.Seed)
			if err != nil {
				return nil, err
			}
			k := kairos.New(platform.CRISP(),
				kairos.WithWeights(kairos.WeightsBoth),
				kairos.WithAdvisoryValidation(),
			)
			ctx := context.Background()
			return func() (int, error) {
				adm, err := k.Admit(ctx, app)
				if err != nil {
					return 1, err
				}
				return 1, k.Release(adm.Instance)
			}, nil
		},
	}
}

// batchApps draws n applications round-robin over the six dataset
// profiles, matching the Table I mix.
func batchApps(n int, seed int64) []*graph.Application {
	var gens []*appgen.Generator
	for i, cfg := range experiments.AllConfigs() {
		gens = append(gens, appgen.New(cfg, seed+int64(i+1)*101))
	}
	apps := make([]*graph.Application, n)
	for i := range apps {
		apps[i] = gens[i%len(gens)].Next()
	}
	return apps
}

// admitAllScenario: one AdmitAll batch per op (largest-first under the
// platform lock), then ReleaseAll. Past saturation most of the batch
// is rejected — the op measures sustained workflow throughput, not
// placements.
func admitAllScenario(n int, opts Options) Scenario {
	ops := opts.ops(20, 5)
	if n >= 1000 {
		ops = opts.ops(3, 1)
	} else if n >= 100 {
		ops = opts.ops(10, 3)
	}
	return Scenario{
		Name:  fmt.Sprintf("admitall/%d", n),
		Group: "admitall",
		Ops:   ops,
		Prepare: func() (func() (int, error), error) {
			apps := batchApps(n, opts.Seed)
			k := kairos.New(platform.CRISP(),
				kairos.WithWeights(kairos.WeightsBoth),
				kairos.WithAdvisoryValidation(),
			)
			ctx := context.Background()
			return func() (int, error) {
				results := k.AdmitAll(ctx, apps)
				attempts := 0
				for _, r := range results {
					if r.Admission != nil {
						attempts++
					}
				}
				k.ReleaseAll()
				return attempts, nil
			}, nil
		},
	}
}

// readmitScenario: a populated platform, one element fault per op. The
// affected applications are forced through the restart path
// (ReadmitAffected): they either move off the faulted element or have
// their old layout replayed, so the population never drains (eviction
// needs the restore replay itself to fail, which a mere element fault
// cannot cause).
func readmitScenario(opts Options) Scenario {
	return Scenario{
		Name:  "readmit/after-fault",
		Group: "readmit",
		Ops:   opts.ops(100, 50),
		Prepare: func() (func() (int, error), error) {
			k := kairos.New(platform.CRISP(),
				kairos.WithWeights(kairos.WeightsBoth),
				kairos.WithAdvisoryValidation(),
			)
			ctx := context.Background()
			// Populate: admit from the batch mix until 12 applications
			// run (or the sample is exhausted).
			for _, app := range batchApps(60, opts.Seed) {
				if len(k.Admitted()) >= 12 {
					break
				}
				_, _ = k.Admit(ctx, app)
			}
			if len(k.Admitted()) == 0 {
				return nil, fmt.Errorf("populating the platform admitted nothing")
			}
			p := k.Platform()
			return func() (int, error) {
				// Fault the lowest-ID enabled element hosting tasks:
				// deterministic, and always an element whose failure
				// forces readmissions.
				target := -1
				for _, e := range p.Elements() {
					if e.Enabled() && e.InUse() {
						target = e.ID
						break
					}
				}
				if target < 0 {
					return 0, fmt.Errorf("no occupied enabled element to fault")
				}
				p.DisableElement(target)
				results := k.ReadmitAffected(ctx)
				p.EnableElement(target)
				return len(results), nil
			}, nil
		},
	}
}

// churnScenario: one fixed-seed churn-simulator run per op — Poisson
// arrivals over the six profiles, exponential lifetimes, fault
// injection and on-rejection defragmentation on a single live manager
// (the serving regime the paper targets).
func churnScenario(opts Options) Scenario {
	return Scenario{
		Name:  "churn/steady-state",
		Group: "churn",
		Ops:   opts.ops(3, 1),
		Prepare: func() (func() (int, error), error) {
			cfg := sim.DefaultConfig()
			cfg.Seed = opts.Seed
			cfg.Duration = 180
			cfg.Policy = sim.PolicyOnRejection
			return func() (int, error) {
				res := sim.Run(cfg)
				return res.Totals.Arrivals + res.Totals.RetryAdmitted, nil
			}, nil
		},
	}
}

// drainScenario: one decommission per op — a fresh two-shard cluster
// is packed onto shard 0 (first-fit, spill disabled) and shard 0 is
// drained, forcing every resident through the make-before-break rehome
// onto shard 1. Attempts counts rehomed residents; shard 1 starts
// empty so a stranded resident is an error, not a data point.
func drainScenario(opts Options) Scenario {
	return Scenario{
		Name:  "cluster/drain-rehome",
		Group: "cluster",
		Ops:   opts.ops(50, 20),
		Prepare: func() (func() (int, error), error) {
			app, err := sampleApp(appgen.Communication, appgen.Medium, opts.Seed)
			if err != nil {
				return nil, err
			}
			ctx := context.Background()
			return func() (int, error) {
				c, err := kairos.NewCluster(2,
					func(int) *platform.Platform { return platform.CRISP() },
					kairos.WithPlacement(kairos.PlacementFirstFit),
					kairos.WithSpillLimit(1),
					kairos.WithClusterSeed(opts.Seed),
					kairos.WithShardOptions(
						kairos.WithWeights(kairos.WeightsBoth),
						kairos.WithAdvisoryValidation(),
					),
				)
				if err != nil {
					return 0, err
				}
				for i := 0; i < 6; i++ {
					if _, err := c.Admit(ctx, app); err != nil {
						break // shard 0 saturated; drain whatever fit
					}
				}
				res, err := c.DrainShard(ctx, 0)
				if err != nil {
					return 0, err
				}
				if len(res.Failed) > 0 {
					return 0, fmt.Errorf("%d residents stranded on the drained shard", len(res.Failed))
				}
				if len(res.Moved) == 0 {
					return 0, fmt.Errorf("drain rehomed nothing; the op measured an empty shard")
				}
				return len(res.Moved), nil
			}, nil
		},
	}
}

// rebalanceScenario: one fixed-seed autoscale flash-crowd run per op
// with the threshold rebalancer on — the elastic serving regime, where
// background migrations chase the hot shard while arrivals keep
// landing (DESIGN.md §10).
func rebalanceScenario(opts Options) Scenario {
	return Scenario{
		Name:  "churn/rebalance-flash",
		Group: "churn",
		Ops:   opts.ops(3, 1),
		Prepare: func() (func() (int, error), error) {
			cfg := sim.DefaultAutoscaleConfig(4)
			cfg.Seed = opts.Seed
			cfg.Duration = 180
			cfg.Rebalance.Policy = rebalance.PolicyThreshold
			return func() (int, error) {
				res, err := sim.RunAutoscale(cfg)
				if err != nil {
					return 0, err
				}
				if res.Totals.Migrations == 0 {
					return 0, fmt.Errorf("the rebalancer migrated nothing; the op degenerated to plain churn")
				}
				return res.Totals.Arrivals + res.Totals.Migrations, nil
			}, nil
		},
	}
}

// benchJournal adapts the raw log to core.Journal for the log-building
// half of the recovery scenario (shard 0, like a single manager).
type benchJournal struct{ log *wal.Log }

func (j benchJournal) Append(op core.Op) (uint64, error) { return j.log.Append(0, op) }

// recoveryOptions are the manager options the recovery scenario uses
// both to build the log and to recover from it — replay re-executes
// the logged workflow, so the two sides must agree.
func recoveryOptions() []kairos.Option {
	return []kairos.Option{
		kairos.WithWeights(kairos.WeightsBoth),
		kairos.WithAdvisoryValidation(),
	}
}

// buildRecoveryLog drives a journaled manager through a deterministic
// admit/release churn until exactly logOps ops are durable, then closes
// the log. Sync is off: the scenario measures replay, and the log's
// bytes are identical either way. Returns the admit-record count — the
// admission workflows a recovery re-executes, the basis of the
// throughput metric.
func buildRecoveryLog(dir string, logOps int, seed int64) (admits int, err error) {
	log, _, err := wal.Open(dir, wal.Options{NoSync: true})
	if err != nil {
		return 0, err
	}
	defer log.Close()
	k := kairos.New(platform.CRISP(), recoveryOptions()...)
	k.AttachJournal(benchJournal{log: log})
	var gens []*appgen.Generator
	for i, cfg := range experiments.AllConfigs() {
		gens = append(gens, appgen.New(cfg, seed+int64(i+1)*101))
	}
	ctx := context.Background()
	var live []string
	for i, journaled := 0, 0; journaled < logOps; i++ {
		// Churn, don't fill: at 12 live applications release the oldest
		// instead of admitting, so the log is an admit/release mix and
		// the platform never saturates into pure rejections (rejections
		// are not journaled and would stall the build).
		if len(live) >= 12 {
			if err := k.Release(live[0]); err != nil {
				return 0, err
			}
			live = live[1:]
			journaled++
			continue
		}
		adm, err := k.Admit(ctx, gens[i%len(gens)].Next())
		if err != nil {
			if len(live) == 0 {
				continue // unfit sample on an idle platform: skip it
			}
			if err := k.Release(live[0]); err != nil {
				return 0, err
			}
			live = live[1:]
			journaled++
			continue
		}
		live = append(live, adm.Instance)
		admits++
		journaled++
	}
	return admits, nil
}

// recoveryScenario: one crash-recovery boot per op — kairos.Recover
// scans the pre-built logOps-deep log and re-executes every logged
// admission and release against a fresh platform. The log has no
// snapshot, so this is the worst case: pure replay from LSN 1.
func recoveryScenario(logOps int, opts Options) Scenario {
	ops := opts.ops(10, 3)
	if logOps >= 10_000 {
		ops = opts.ops(3, 1)
	}
	var dir string
	return Scenario{
		Name:  fmt.Sprintf("recovery/replay-%dk", logOps/1000),
		Group: "recovery",
		Ops:   ops,
		Prepare: func() (func() (int, error), error) {
			d, err := os.MkdirTemp("", "bench-recovery-")
			if err != nil {
				return nil, err
			}
			dir = d
			admits, err := buildRecoveryLog(dir, logOps, opts.Seed)
			if err != nil {
				return nil, err
			}
			want := uint64(logOps)
			return func() (int, error) {
				m, log, err := kairos.Recover(dir, platform.CRISP(), recoveryOptions()...)
				if err != nil {
					return 0, err
				}
				if got := m.LastLSN(); got != want {
					log.Close()
					return 0, fmt.Errorf("recovered through LSN %d, want %d", got, want)
				}
				return admits, log.Close()
			}, nil
		},
		Cleanup: func() {
			if dir != "" {
				os.RemoveAll(dir)
			}
		},
	}
}

// cacheScenario: Admit+Release of the communication-medium sample,
// without (cold) or with (hot) the layout cache. Release restores the
// platform to empty, so in the hot variant every measured op after
// the warm-up admission is a cache hit.
func cacheScenario(hot bool, opts Options) Scenario {
	name := "cache/admit-cold"
	if hot {
		name = "cache/admit-hot"
	}
	return Scenario{
		Name:  name,
		Group: "cache",
		Ops:   opts.ops(200, 100),
		Prepare: func() (func() (int, error), error) {
			app, err := sampleApp(appgen.Communication, appgen.Medium, opts.Seed)
			if err != nil {
				return nil, err
			}
			kopts := []kairos.Option{
				kairos.WithWeights(kairos.WeightsBoth),
				kairos.WithoutValidation(),
			}
			if hot {
				kopts = append(kopts, kairos.WithLayoutCache(16))
			}
			k := kairos.New(platform.CRISP(), kopts...)
			ctx := context.Background()
			if hot {
				// Warm the cache: one full admission inserts the layout.
				adm, err := k.Admit(ctx, app)
				if err != nil {
					return nil, fmt.Errorf("warming the layout cache: %w", err)
				}
				if err := k.Release(adm.Instance); err != nil {
					return nil, err
				}
			}
			return func() (int, error) {
				adm, err := k.Admit(ctx, app)
				if err != nil {
					return 1, err
				}
				return 1, k.Release(adm.Instance)
			}, nil
		},
	}
}

// strategyScenario: Admit+Release of the communication-medium sample
// under a swapped phase strategy.
func strategyScenario(name string, opts Options, strat kairos.Option) Scenario {
	return Scenario{
		Name:  "strategy/" + name,
		Group: "strategy",
		Ops:   opts.ops(100, 50),
		Prepare: func() (func() (int, error), error) {
			app, err := sampleApp(appgen.Communication, appgen.Medium, opts.Seed)
			if err != nil {
				return nil, err
			}
			k := kairos.New(platform.CRISP(),
				kairos.WithWeights(kairos.WeightsBoth),
				kairos.WithAdvisoryValidation(),
				strat,
			)
			ctx := context.Background()
			return func() (int, error) {
				adm, err := k.Admit(ctx, app)
				if err != nil {
					return 1, err
				}
				return 1, k.Release(adm.Instance)
			}, nil
		},
	}
}
