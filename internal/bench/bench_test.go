package bench

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestSuiteDeterministic pins the suite-construction half of the
// determinism contract: equal options build the identical scenario
// set with identical ops, and quick mode changes ops only.
func TestSuiteDeterministic(t *testing.T) {
	a := Suite(Options{Quick: true, Seed: 1})
	b := Suite(Options{Quick: true, Seed: 1})
	if len(a) != len(b) {
		t.Fatalf("suite sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Group != b[i].Group || a[i].Ops != b[i].Ops {
			t.Errorf("scenario %d differs: %q/%q/%d vs %q/%q/%d",
				i, a[i].Name, a[i].Group, a[i].Ops, b[i].Name, b[i].Group, b[i].Ops)
		}
	}
	full := Suite(Options{Seed: 1})
	if len(full) != len(a) {
		t.Fatalf("full and quick suites differ in scenario count: %d vs %d", len(full), len(a))
	}
	for i := range full {
		if full[i].Name != a[i].Name {
			t.Errorf("scenario %d: full %q vs quick %q", i, full[i].Name, a[i].Name)
		}
		if full[i].Ops < a[i].Ops {
			t.Errorf("scenario %s: full ops %d < quick ops %d", full[i].Name, full[i].Ops, a[i].Ops)
		}
	}
	if len(full) < 8 {
		t.Errorf("suite has %d scenarios, want >= 8", len(full))
	}
}

// TestRunDeterministicCounts runs the whole suite twice at one op per
// scenario and requires every non-timing field — scenario set, ops,
// admission-attempt counts — to be identical. This is the benchstat
// half of the determinism contract: only timings may differ between
// runs.
func TestRunDeterministicCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full scenario set twice")
	}
	shrink := func() []Scenario {
		scs := Suite(Options{Quick: true, Seed: 1})
		for i := range scs {
			scs[i].Ops = 1
		}
		return scs
	}
	a, err := Run(shrink(), true, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shrink(), true, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Scenarios) != len(b.Scenarios) {
		t.Fatalf("scenario counts differ: %d vs %d", len(a.Scenarios), len(b.Scenarios))
	}
	for i := range a.Scenarios {
		x, y := a.Scenarios[i], b.Scenarios[i]
		if x.Name != y.Name || x.Group != y.Group || x.Ops != y.Ops || x.Attempts != y.Attempts {
			t.Errorf("scenario %d counts differ: %+v vs %+v", i, x, y)
		}
		if x.NsPerOp <= 0 {
			t.Errorf("scenario %s: non-positive ns/op %d", x.Name, x.NsPerOp)
		}
		if x.Attempts <= 0 {
			t.Errorf("scenario %s: no admission attempts recorded", x.Name)
		}
	}
}

// report builds a one-scenario report for the Compare tests.
func report(ns, allocs int64) *Report {
	return &Report{
		Schema: Schema, Quick: true, Seed: 1,
		Scenarios: []Measurement{{
			Name: "admit/x", Group: "admit", Ops: 10, Attempts: 10,
			NsPerOp: ns, AllocsPerOp: allocs,
		}},
	}
}

func TestCompareGate(t *testing.T) {
	old := report(1000, 500)

	if regs, err := Compare(old, report(1100, 500), 0.15); err != nil || len(regs) != 0 {
		t.Errorf("+10%% ns/op within tolerance should pass: regs=%v err=%v", regs, err)
	}
	if regs, _ := Compare(old, report(1200, 500), 0.15); len(regs) != 1 || regs[0].Metric != "nsPerOp" {
		t.Errorf("+20%% ns/op should fail the 15%% gate: %v", regs)
	}
	// Allocation noise floor: +2 passes, beyond it fails.
	if regs, _ := Compare(old, report(1000, 502), 0.15); len(regs) != 0 {
		t.Errorf("+2 allocs/op is within the noise floor: %v", regs)
	}
	if regs, _ := Compare(old, report(1000, 520), 0.15); len(regs) != 1 || regs[0].Metric != "allocsPerOp" {
		t.Errorf("+20 allocs/op should fail: %v", regs)
	}
	// Scenario disappearance is a regression.
	empty := &Report{Schema: Schema, Quick: true, Seed: 1}
	if regs, _ := Compare(old, empty, 0.15); len(regs) != 1 || regs[0].Metric != "missing" {
		t.Errorf("missing scenario should regress: %v", regs)
	}
	// Incomparable runs error out instead of passing silently.
	other := report(1000, 500)
	other.Quick = false
	if _, err := Compare(old, other, 0.15); err == nil {
		t.Error("quick vs full comparison should error")
	}
	badSchema := report(1000, 500)
	badSchema.Schema = Schema + 1
	if _, err := Compare(old, badSchema, 0.15); err == nil {
		t.Error("schema mismatch should error")
	}
}

func TestFilter(t *testing.T) {
	suite := Suite(Options{Quick: true, Seed: 1})
	admitOnly, err := Filter(suite, "^admit/")
	if err != nil {
		t.Fatal(err)
	}
	if len(admitOnly) != 6 {
		t.Errorf("^admit/ matched %d scenarios, want 6", len(admitOnly))
	}
	if _, err := Filter(suite, "["); err == nil {
		t.Error("bad regexp should error")
	}
}

// TestReportSchemaGolden pins the BENCH_*.json schema: the exact bytes
// of a marshalled report with fixed values. Intentional schema changes
// must bump Schema and regenerate with -update-golden.
func TestReportSchemaGolden(t *testing.T) {
	rep := &Report{
		Schema:    Schema,
		SHA:       "0123abc",
		GoVersion: "go1.24.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		Quick:     true,
		Seed:      1,
		Scenarios: []Measurement{
			{
				Name: "admit/communication-small", Group: "admit",
				Ops: 100, Attempts: 100,
				NsPerOp: 123456, BytesPerOp: 15800, AllocsPerOp: 345,
				AdmitsPerSec: 8100.5,
			},
			{
				Name: "churn/steady-state", Group: "churn",
				Ops: 1, Attempts: 61,
				NsPerOp: 40000000, BytesPerOp: 6716880, AllocsPerOp: 88498,
				AdmitsPerSec: 1525,
			},
		},
	}
	got, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_schema.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("report schema drifted from %s:\n got: %s\nwant: %s\n(bump Schema and -update-golden if intentional)",
			golden, got, want)
	}

	// The golden must round-trip through the parser.
	parsed, err := UnmarshalReport(want)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Schema != Schema || len(parsed.Scenarios) != 2 {
		t.Errorf("golden round-trip lost data: %+v", parsed)
	}

	// And every expected field must be present in the JSON, by name.
	var raw map[string]any
	if err := json.Unmarshal(want, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "sha", "goVersion", "goos", "goarch", "quick", "seed", "scenarios"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("schema golden lacks top-level key %q", key)
		}
	}
	sc := raw["scenarios"].([]any)[0].(map[string]any)
	for _, key := range []string{"name", "group", "ops", "attempts", "nsPerOp", "bytesPerOp", "allocsPerOp", "admitsPerSec"} {
		if _, ok := sc[key]; !ok {
			t.Errorf("schema golden scenario lacks key %q", key)
		}
	}
}
