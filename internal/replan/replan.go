// Package replan implements the default offline replanner: a
// budgeted large-neighborhood search over a whole engine's resident
// set. The paper's admission workflow is incremental and cheap but
// greedy — each application is placed against whatever fragmentation
// the arrival order produced, and task migration is impossible
// (§I-A), so the only way to improve a placement afterwards is to
// restart it. The replanner does exactly that, offline and
// tentatively: it repeatedly selects a neighborhood of worst-placed
// residents (highest cost under the communication-distance objective
// of internal/optimal), releases them from a sandbox clone of the
// platform, re-admits them in candidate orders through the ordinary
// four-phase workflow, and keeps the composite move only when it
// strictly lowers the objective. Effort is bounded by the sandbox's
// move budget — re-admission attempts, never wall-clock — and all
// randomness comes from a caller-provided seed, so a pass is fully
// deterministic.
package replan

import (
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/optimal"
	"repro/internal/platform"
)

// DefaultNeighborhood is the neighborhood size when LNS.Neighborhood
// is zero: the worst-placed resident plus two random companions.
const DefaultNeighborhood = 3

// DefaultMaxStale is the give-up threshold when LNS.MaxStale is zero:
// after this many consecutive rounds without an accepted move the
// pass ends even with budget left.
const DefaultMaxStale = 6

// LNS is the large-neighborhood-search replanner. The zero value is
// usable: seed 0, neighborhood of DefaultNeighborhood, the default
// communication-distance objective.
type LNS struct {
	// Seed seeds the neighborhood sampler; equal seeds (and equal
	// sandbox state) give byte-identical passes.
	Seed int64
	// Neighborhood is the number of residents released per composite
	// move; zero means DefaultNeighborhood.
	Neighborhood int
	// MaxStale ends the pass after this many consecutive rounds
	// without improvement; zero means DefaultMaxStale.
	MaxStale int
	// Objective is the cost model; the zero value means
	// optimal.DefaultObjective.
	Objective optimal.Objective
}

// Name implements core.Replanner.
func (l LNS) Name() string { return "lns" }

// lnsRun is the per-pass state: the distance matrix of the sandbox
// platform and the resolved parameters.
type lnsRun struct {
	sb       *core.ReplanSandbox
	obj      optimal.Objective
	dist     [][]int
	diameter int
}

// cost evaluates one resident under the objective: implementation
// base costs plus CommWeight × hopdistance × tokenSize per channel,
// with unreachable endpoint pairs charged diameter + 1 (the same
// convention as optimal.Solver.CostOf).
func (r *lnsRun) cost(adm *core.Admission) float64 {
	c := 0.0
	for _, t := range adm.App.Tasks {
		c += adm.Binding.Implementation(t.ID).Cost
	}
	for _, ch := range adm.App.Channels {
		d := r.dist[adm.Assignment[ch.Src]][adm.Assignment[ch.Dst]]
		if d == platform.Unreachable {
			d = r.diameter + 1
		}
		c += r.obj.CommWeight * float64(d) * float64(ch.TokenSize)
	}
	return c
}

// total sums the cost of every resident.
func (r *lnsRun) total() float64 {
	c := 0.0
	for _, name := range r.sb.Residents() {
		c += r.cost(r.sb.Layout(name))
	}
	return c
}

// Replan implements core.Replanner.
func (l LNS) Replan(sb *core.ReplanSandbox) (before, after float64) {
	obj := l.Objective
	if obj == (optimal.Objective{}) {
		obj = optimal.DefaultObjective()
	}
	size := l.Neighborhood
	if size <= 0 {
		size = DefaultNeighborhood
	}
	maxStale := l.MaxStale
	if maxStale <= 0 {
		maxStale = DefaultMaxStale
	}

	p := sb.Platform()
	n := p.NumElements()
	run := &lnsRun{sb: sb, obj: obj, dist: make([][]int, n)}
	for i := 0; i < n; i++ {
		run.dist[i] = p.BFSDistances([]int{i})
		for _, d := range run.dist[i] {
			if d != platform.Unreachable && d > run.diameter {
				run.diameter = d
			}
		}
	}

	before = run.total()
	after = before
	rng := rand.New(rand.NewSource(l.Seed))
	const eps = 1e-9

	stale := 0
	for sb.Remaining() > 0 && stale < maxStale {
		names := sb.Residents()
		if len(names) == 0 {
			break
		}
		// Rank by current cost, worst first (ties by name, so the
		// ordering never depends on map iteration).
		sort.Slice(names, func(i, j int) bool {
			ci, cj := run.cost(sb.Layout(names[i])), run.cost(sb.Layout(names[j]))
			if ci != cj {
				return ci > cj
			}
			return names[i] < names[j]
		})
		// Seed the neighborhood with the worst-placed resident; once a
		// round went stale, diversify by seeding from a random one so
		// the search does not hammer an unimprovable corner.
		seedIdx := 0
		if stale > 0 {
			seedIdx = rng.Intn(len(names))
		}
		k := size
		if k > len(names) {
			k = len(names)
		}
		if k > sb.Remaining() {
			k = sb.Remaining()
		}
		members := []string{names[seedIdx]}
		for _, j := range rng.Perm(len(names)) {
			if len(members) == k {
				break
			}
			if j != seedIdx {
				members = append(members, names[j])
			}
		}
		// Candidate order 1: worst-placed first (release the most
		// expensive resident's resources for the others to use).
		sort.Slice(members, func(i, j int) bool {
			ci, cj := run.cost(sb.Layout(members[i])), run.cost(sb.Layout(members[j]))
			if ci != cj {
				return ci > cj
			}
			return members[i] < members[j]
		})
		pre := 0.0
		for _, m := range members {
			pre += run.cost(sb.Layout(m))
		}
		improved := false
		for attempt := 0; attempt < 2; attempt++ {
			order := members
			if attempt == 1 {
				// Candidate order 2: a seeded permutation.
				order = append([]string(nil), members...)
				rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			}
			if len(order) > sb.Remaining() {
				break
			}
			if !sb.Shuffle(order) {
				continue
			}
			post := 0.0
			for _, m := range order {
				post += run.cost(sb.Layout(m))
			}
			if post < pre-eps {
				after += post - pre
				improved = true
				break
			}
			sb.Undo()
		}
		if improved {
			stale = 0
		} else {
			stale++
		}
	}
	return before, after
}
