package replan

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/resource"
)

func chainApp(name string, n int, share int64) *graph.Application {
	app := graph.New(name)
	for i := 0; i < n; i++ {
		app.AddTask("t", graph.Internal, graph.Implementation{
			Name: "dsp", Target: platform.TypeDSP,
			Requires: resource.Of(share, 8, 0, 0), Cost: 1, ExecTime: 5,
		})
	}
	for i := 0; i+1 < n; i++ {
		app.AddChannel(i, i+1)
	}
	return app
}

// pinnedBlocker is a single-task app pinned to one element, used to
// exhaust chosen tiles so the apps admitted after it are forced into
// whatever holes remain.
func pinnedBlocker(name string, elem int, share int64) *graph.Application {
	app := graph.New(name)
	id := app.AddTask("b", graph.Internal, graph.Implementation{
		Name: "dsp", Target: platform.TypeDSP,
		Requires: resource.Of(share, 8, 0, 0), Cost: 1, ExecTime: 5,
	})
	app.Tasks[id].FixedElement = elem
	return app
}

// buildFragmented builds a manager whose resident set was admitted
// under heavy contention and then thinned out: blockers exhaust every
// tile except two opposite corners, chains are forced to straddle the
// whole mesh, and then the blockers leave. Task migration is
// impossible, so the survivors stay scattered across a platform that
// is now mostly empty — exactly the state a replanner should improve.
func buildFragmented(t *testing.T, opts core.Options) *core.Kairos {
	t.Helper()
	p := platform.Mesh(4, 4, 4)
	opts.Weights = mapping.WeightsCommunication
	opts.SkipValidation = true
	k := core.New(p, opts)
	n := p.NumElements()
	var blockers []string
	for e := 0; e < n; e++ {
		if e == 0 || e == n-1 {
			continue
		}
		adm, err := k.Admit(context.Background(), pinnedBlocker(fmt.Sprintf("blk%d", e), e, 70))
		if err != nil {
			t.Fatalf("blocker %d: %v", e, err)
		}
		blockers = append(blockers, adm.Instance)
	}
	// A 2-task chain at 60 share: the tasks cannot co-locate (60+60
	// exceeds a tile) and only the two opposite corners have room, so
	// the chain spans the full mesh diagonal.
	if _, err := k.Admit(context.Background(), chainApp("app0", 2, 60)); err != nil {
		t.Fatalf("chain: %v", err)
	}
	for _, name := range blockers {
		if err := k.Release(name); err != nil {
			t.Fatal(err)
		}
	}
	return k
}

func TestLNSImprovesFragmentedPlacement(t *testing.T) {
	k := buildFragmented(t, core.Options{Replanner: LNS{Seed: 1}, ReplanBudget: 64})
	res, err := k.Replan(context.Background())
	if err != nil {
		t.Fatalf("Replan: %v", err)
	}
	if res.CostBefore <= 0 {
		t.Fatalf("degenerate fixture: cost before = %v", res.CostBefore)
	}
	if !res.Improved {
		t.Fatalf("LNS found no improvement on a heavily fragmented platform: %+v", res)
	}
	if res.CostAfter >= res.CostBefore {
		t.Fatalf("committed pass did not lower the objective: %v -> %v", res.CostBefore, res.CostAfter)
	}
	if res.Evaluated == 0 || res.Evaluated > 64 {
		t.Fatalf("budget accounting off: evaluated %d with budget 64", res.Evaluated)
	}
}

func TestLNSDeterministic(t *testing.T) {
	run := func() string {
		k := buildFragmented(t, core.Options{Replanner: LNS{Seed: 7}, ReplanBudget: 48})
		res, err := k.Replan(context.Background())
		if err != nil {
			t.Fatalf("Replan: %v", err)
		}
		type move struct{ From, To string }
		moves := make([]move, len(res.Moves))
		for i, m := range res.Moves {
			moves[i] = move{m.From, m.To}
		}
		b, err := json.Marshal(struct {
			Moves         []move
			Before, After float64
			Evaluated     int
			Improved      bool
		}{moves, res.CostBefore, res.CostAfter, res.Evaluated, res.Improved})
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two passes with the same seed differ:\n%s\n%s", a, b)
	}
}

func TestLNSRespectsBudget(t *testing.T) {
	for _, budget := range []int{1, 2, 8} {
		k := buildFragmented(t, core.Options{Replanner: LNS{Seed: 3}})
		res, err := k.ReplanWithBudget(context.Background(), budget)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if res.Evaluated > budget {
			t.Errorf("budget %d: evaluated %d moves", budget, res.Evaluated)
		}
	}
}

func TestLNSZeroResidents(t *testing.T) {
	p := platform.Mesh(2, 2, 4)
	k := core.New(p, core.Options{Weights: mapping.WeightsCommunication, SkipValidation: true, Replanner: LNS{}})
	res, err := k.Replan(context.Background())
	if err != nil {
		t.Fatalf("Replan on empty manager: %v", err)
	}
	if res.Improved || res.Evaluated != 0 {
		t.Errorf("empty manager produced work: %+v", res)
	}
}
