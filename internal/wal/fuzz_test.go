package wal_test

import (
	"bytes"
	"testing"

	"repro/internal/appgen"
	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/wal"
)

// FuzzWALRoundTrip feeds arbitrary bytes to the op decoder. Whatever
// decodes must re-encode, and the decode→encode→decode cycle must be a
// fixpoint; everything else must be rejected without panicking.
// Seeds are real encoded ops — the sample set plus an appgen stream —
// and corrupted variants of them.
func FuzzWALRoundTrip(f *testing.F) {
	seed := func(lsn uint64, shard int, op core.Op) []byte {
		b, err := wal.EncodeOp(nil, lsn, shard, op)
		if err != nil {
			f.Fatalf("encoding seed: %v", err)
		}
		return b
	}
	var seeds [][]byte
	for i, op := range sampleOps(f) {
		seeds = append(seeds, seed(uint64(i)+1, i%3, op))
	}
	gen := appgen.New(appgen.NewConfig(appgen.Communication, appgen.Medium), 7)
	for i := 0; i < 4; i++ {
		seeds = append(seeds, seed(uint64(100+i), 1, core.Op{
			Kind:     core.OpAdmit,
			Seq:      i + 1,
			Instance: "fuzz",
			App:      gen.Next(),
		}))
	}
	// A layout-carrying admit record (out-of-epoch optimistic commit).
	layoutApp := gen.Next()
	layout := &core.OpLayout{
		Impls:      make([]int, len(layoutApp.Tasks)),
		Assignment: make([]int, len(layoutApp.Tasks)),
	}
	for i := range layout.Assignment {
		layout.Assignment[i] = i % 3
	}
	for i := range layoutApp.Channels {
		layout.Routes = append(layout.Routes, routing.Route{Channel: i, Path: []int{i % 3, 3, (i + 1) % 3}})
	}
	seeds = append(seeds, seed(200, 2, core.Op{
		Kind:     core.OpAdmit,
		Seq:      9,
		Instance: "fuzz-layout",
		App:      layoutApp,
		Layout:   layout,
	}))
	for _, s := range seeds {
		f.Add(s)
		// Truncations and flips: decoder must reject or survive both.
		f.Add(s[:len(s)/2])
		flipped := append([]byte(nil), s...)
		flipped[len(flipped)/2] ^= 0xff
		f.Add(flipped)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := wal.DecodeOp(payload)
		if err != nil {
			return // rejected without panic: fine
		}
		enc, err := wal.EncodeOp(nil, rec.LSN, rec.Shard, rec.Op)
		if err != nil {
			t.Fatalf("decoded payload does not re-encode: %v", err)
		}
		rec2, err := wal.DecodeOp(enc)
		if err != nil {
			t.Fatalf("re-encoded payload does not decode: %v", err)
		}
		enc2, err := wal.EncodeOp(nil, rec2.LSN, rec2.Shard, rec2.Op)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode is not a fixpoint:\nfirst:  %x\nsecond: %x", enc, enc2)
		}
		if rec2.LSN != rec.LSN || rec2.Shard != rec.Shard {
			t.Fatalf("lsn/shard drifted: (%d,%d) -> (%d,%d)", rec.LSN, rec.Shard, rec2.LSN, rec2.Shard)
		}
	})
}
