package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
)

// DefaultSegmentBytes is the segment rotation threshold when
// Options.SegmentBytes is zero.
const DefaultSegmentBytes = 1 << 20

// File is the writable-file surface the log needs. *os.File satisfies
// it; the crash-injection test harness substitutes writers that fail
// or tear after a byte budget.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// Options configures a log.
type Options struct {
	// SegmentBytes rotates the active segment once its size reaches
	// the threshold; zero means DefaultSegmentBytes.
	SegmentBytes int64
	// NoSync skips the fsync after each append and checkpoint write.
	// Benchmarks use it to measure replay cost without I/O latency;
	// a crash can then lose acknowledged operations.
	NoSync bool
	// OpenFile creates a file for writing (segments, snapshot temp
	// files); nil means os.Create. The crash-injection harness
	// substitutes failing writers here.
	OpenFile func(path string) (File, error)
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return DefaultSegmentBytes
}

func (o Options) openFile(path string) (File, error) {
	if o.OpenFile != nil {
		return o.OpenFile(path)
	}
	return os.Create(path)
}

// Recovered is what Open found on disk: the newest valid snapshot (nil
// for a fresh or snapshot-less directory) and every durable op record
// still present, in ascending LSN order. Ops already covered by the
// snapshot may be included (compaction is lazy); replay filters them
// with each shard's snapshot LastLSN.
type Recovered struct {
	// Snapshot holds one state export per shard, or nil.
	Snapshot []*core.StateExport
	// SnapshotLSN is the LSN the snapshot file was named with (the
	// log's last assigned LSN at checkpoint time); zero without one.
	SnapshotLSN uint64
	// Ops are the durable op records, ascending by LSN.
	Ops []RecordedOp
}

// Log is the write-ahead log: an append-only sequence of op records in
// size-rotated segment files plus checkpoint snapshots, all under one
// directory. Safe for concurrent use. Every append is fsynced before
// it returns (unless Options.NoSync), so an acknowledged op survives a
// crash; a write or sync failure is sticky — the log refuses further
// appends, because the tail's durability is unknown.
type Log struct {
	mu      sync.Mutex
	dir     string
	opts    Options
	seg     File
	segPath string
	segSize int64
	// segFirst is the first LSN of the active segment (its filename).
	segFirst uint64
	nextLSN  uint64
	// opBuf and frameBuf are reused append scratch space.
	opBuf    []byte
	frameBuf []byte
	closed   bool
	failed   error
}

// Open opens (creating if needed) the log directory, recovers its
// durable contents, truncates any torn tail of the final segment, and
// starts a fresh active segment for appends. The returned Recovered
// holds the snapshot and op records for the caller to replay; the
// returned Log is ready for appends continuing the LSN sequence.
func Open(dir string, opts Options) (*Log, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	rec, lastLSN, err := scan(dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opts: opts, nextLSN: lastLSN + 1}
	if err := l.startSegmentLocked(); err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// NextLSN returns the LSN the next append will be assigned.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Append durably records one shard-tagged op and returns its LSN. It
// satisfies core.Journal (curried per shard — see the kairos layer).
func (l *Log) Append(shard int, op core.Op) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	if l.failed != nil {
		return 0, fmt.Errorf("wal: log failed earlier: %w", l.failed)
	}
	// Rotate before writing, never after: once a record is durable the
	// append must succeed, or the engine would roll back an op the log
	// will replay.
	if l.segSize >= l.opts.segmentBytes() {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	lsn := l.nextLSN
	payload, err := EncodeOp(l.opBuf[:0], lsn, shard, op)
	if err != nil {
		return 0, err
	}
	l.opBuf = payload
	frame := appendFrame(l.frameBuf[:0], payload)
	l.frameBuf = frame
	if _, err := l.seg.Write(frame); err != nil {
		l.failed = err
		return 0, err
	}
	if !l.opts.NoSync {
		if err := l.seg.Sync(); err != nil {
			l.failed = err
			return 0, err
		}
	}
	l.nextLSN++
	l.segSize += int64(len(frame))
	return lsn, nil
}

// Checkpoint durably writes a full snapshot (one state export per
// shard, in shard order) and compacts: closed segments whose every
// record is covered by all shards' snapshots are deleted. The active
// segment is rotated first so the log tail needed after this snapshot
// starts in a fresh file.
func (l *Log) Checkpoint(states []*core.StateExport) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	payload, err := EncodeSnapshot(nil, states)
	if err != nil {
		return err
	}
	lsn := l.nextLSN - 1
	path := filepath.Join(l.dir, snapName(lsn))
	tmp := path + ".tmp"
	f, err := l.opts.openFile(tmp)
	if err != nil {
		return err
	}
	buf := append(make([]byte, 0, len(snapMagic)+frameHeader+len(payload)), snapMagic...)
	buf = appendFrame(buf, payload)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if !l.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(l.dir)
	if err := l.rotateLocked(); err != nil {
		return err
	}
	l.compactLocked(states)
	return nil
}

// Close syncs and closes the active segment. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.seg == nil {
		return nil
	}
	var err error
	if !l.opts.NoSync && l.failed == nil {
		err = l.seg.Sync()
	}
	if cerr := l.seg.Close(); err == nil {
		err = cerr
	}
	l.seg = nil
	return err
}

// startSegmentLocked opens a fresh active segment at nextLSN.
func (l *Log) startSegmentLocked() error {
	path := filepath.Join(l.dir, segName(l.nextLSN))
	f, err := l.opts.openFile(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if !l.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	l.seg = f
	l.segPath = path
	l.segFirst = l.nextLSN
	l.segSize = int64(len(segMagic))
	syncDir(l.dir)
	return nil
}

// rotateLocked closes the active segment and starts the next one. A
// same-name rotation (no appends since the segment started) is a no-op.
// A rotation failure is sticky: the log's tail state is unknown, so
// further appends are refused.
func (l *Log) rotateLocked() error {
	if l.segFirst == l.nextLSN {
		return nil
	}
	if l.seg != nil {
		if err := l.seg.Close(); err != nil {
			l.seg = nil
			l.failed = err
			return err
		}
		l.seg = nil
	}
	if err := l.startSegmentLocked(); err != nil {
		l.failed = err
		return err
	}
	return nil
}

// compactLocked deletes closed segments entirely covered by the
// snapshot: a segment may go when every shard's snapshot already
// covers the segment's last LSN. Shards that never journaled an op
// (LastLSN zero) have no records anywhere and do not hold compaction
// back.
func (l *Log) compactLocked(states []*core.StateExport) {
	cover := uint64(0)
	have := false
	for _, se := range states {
		if se.LastLSN == 0 {
			continue
		}
		if !have || se.LastLSN < cover {
			cover = se.LastLSN
			have = true
		}
	}
	if !have {
		return
	}
	segs := listSegments(l.dir)
	for i, s := range segs {
		if s.first == l.segFirst {
			continue // active
		}
		// The segment's records end where the next segment starts.
		var last uint64
		if i+1 < len(segs) {
			last = segs[i+1].first - 1
		} else {
			continue // no successor on disk; keep
		}
		if last <= cover {
			os.Remove(filepath.Join(l.dir, s.name))
		}
	}
	syncDir(l.dir)
}

// --- directory scanning / recovery ---

type segEntry struct {
	name  string
	first uint64
}

func segName(first uint64) string       { return fmt.Sprintf("seg-%016x.wal", first) }
func snapName(lsn uint64) string        { return fmt.Sprintf("snap-%016x.snap", lsn) }
func parseHex(s string) (uint64, error) { return strconv.ParseUint(s, 16, 64) }

func listSegments(dir string) []segEntry {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var segs []segEntry
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		first, err := parseHex(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"))
		if err != nil {
			continue
		}
		segs = append(segs, segEntry{name: name, first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs
}

// scan reads the directory's durable contents: the newest valid
// snapshot, every op record in LSN order, and the last durable LSN.
// Torn tails of the final segment are truncated on disk; leftover
// snapshot temp files are removed.
func scan(dir string) (*Recovered, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	var snaps []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name)) // crashed mid-checkpoint
			continue
		}
		if strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap") {
			if lsn, err := parseHex(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")); err == nil {
				snaps = append(snaps, lsn)
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })

	rec := &Recovered{}
	for _, lsn := range snaps {
		states, err := readSnapshot(filepath.Join(dir, snapName(lsn)))
		if err != nil {
			return nil, 0, fmt.Errorf("wal: snapshot %s: %w", snapName(lsn), err)
		}
		rec.Snapshot = states
		rec.SnapshotLSN = lsn
		break
	}

	segs := listSegments(dir)
	lastLSN := rec.SnapshotLSN
	for i, s := range segs {
		path := filepath.Join(dir, s.name)
		ops, durable, torn, err := readSegment(path, s.first)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: segment %s: %w", s.name, err)
		}
		if torn {
			if i != len(segs)-1 {
				return nil, 0, fmt.Errorf("%w: segment %s torn but not final", ErrCorrupt, s.name)
			}
			if terr := os.Truncate(path, durable); terr != nil {
				return nil, 0, terr
			}
		}
		rec.Ops = append(rec.Ops, ops...)
		if n := len(ops); n > 0 {
			if ops[n-1].LSN > lastLSN {
				lastLSN = ops[n-1].LSN
			}
		}
	}
	return rec, lastLSN, nil
}

// readSegment parses one segment file. It returns the decoded ops, the
// byte offset of the end of the last whole record (the durable
// prefix), and whether the file was torn after it. A file too short
// for the magic counts as torn at offset zero only when it is brand
// new (empty); a wrong magic is corruption.
func readSegment(path string, first uint64) (ops []RecordedOp, durable int64, torn bool, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, err
	}
	if len(b) < len(segMagic) {
		// Crashed between creating the file and syncing its magic.
		return nil, 0, true, nil
	}
	if string(b[:len(segMagic)]) != segMagic {
		return nil, 0, false, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	off := len(segMagic)
	want := first
	for off < len(b) {
		payload, next, ferr := readFrame(b, off)
		if ferr == errTorn {
			return ops, int64(off), true, nil
		}
		if ferr != nil {
			return nil, 0, false, ferr
		}
		rec, derr := DecodeOp(payload)
		if derr != nil {
			return nil, 0, false, fmt.Errorf("record at offset %d: %w", off, derr)
		}
		if rec.LSN != want {
			return nil, 0, false, fmt.Errorf("%w: record at offset %d has lsn %d, want %d", ErrCorrupt, off, rec.LSN, want)
		}
		ops = append(ops, rec)
		off = next
		want++
	}
	return ops, int64(off), false, nil
}

// readSnapshot parses one snapshot file.
func readSnapshot(path string) ([]*core.StateExport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < len(snapMagic) || string(b[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	payload, next, err := readFrame(b, len(snapMagic))
	if err != nil {
		if err == errTorn {
			return nil, fmt.Errorf("%w: torn snapshot record", ErrCorrupt)
		}
		return nil, err
	}
	if next != len(b) {
		return nil, fmt.Errorf("%w: %d trailing snapshot bytes", ErrCorrupt, len(b)-next)
	}
	states, err := DecodeSnapshot(payload)
	if err != nil {
		return nil, err
	}
	return states, nil
}

// syncDir fsyncs the directory so renames and removals are durable;
// best-effort (not all platforms support directory sync).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}
