package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
)

// DefaultSegmentBytes is the segment rotation threshold when
// Options.SegmentBytes is zero.
const DefaultSegmentBytes = 1 << 20

// File is the writable-file surface the log needs. *os.File satisfies
// it; the crash-injection test harness substitutes writers that fail
// or tear after a byte budget.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// Options configures a log.
type Options struct {
	// SegmentBytes rotates the active segment once its size reaches
	// the threshold; zero means DefaultSegmentBytes.
	SegmentBytes int64
	// NoSync skips the fsync after each append and checkpoint write.
	// Benchmarks use it to measure replay cost without I/O latency;
	// a crash can then lose acknowledged operations.
	NoSync bool
	// OpenFile creates a file for writing (segments, snapshot temp
	// files); nil means os.Create. The crash-injection harness
	// substitutes failing writers here.
	OpenFile func(path string) (File, error)
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return DefaultSegmentBytes
}

func (o Options) openFile(path string) (File, error) {
	if o.OpenFile != nil {
		return o.OpenFile(path)
	}
	return os.Create(path)
}

// Recovered is what Open found on disk: the newest valid snapshot (nil
// for a fresh or snapshot-less directory) and every durable op record
// still present, in ascending LSN order. Ops already covered by the
// snapshot may be included (compaction is lazy); replay filters them
// with each shard's snapshot LastLSN.
type Recovered struct {
	// Snapshot holds one state export per shard, or nil.
	Snapshot []*core.StateExport
	// SnapshotLSN is the LSN the snapshot file was named with (the
	// log's last assigned LSN at checkpoint time); zero without one.
	SnapshotLSN uint64
	// SnapshotPath is the file name the snapshot was read from (empty
	// without one), so shape-mismatch diagnostics can point at the
	// offending file.
	SnapshotPath string
	// Ops are the durable op records, ascending by LSN.
	Ops []RecordedOp
	// Segments locates, in LSN order, the segment file each recovered
	// op range came from (see SegmentFor).
	Segments []SegmentRange
}

// SegmentRange is the inclusive LSN range of op records recovered from
// one segment file.
type SegmentRange struct {
	Name        string
	First, Last uint64
}

// SegmentFor names the segment file the op with the given LSN was
// recovered from, or "" when no recovered segment holds it.
func (r *Recovered) SegmentFor(lsn uint64) string {
	for _, s := range r.Segments {
		if s.First <= lsn && lsn <= s.Last {
			return s.Name
		}
	}
	return ""
}

// Log is the write-ahead log: an append-only sequence of op records in
// size-rotated segment files plus checkpoint snapshots, all under one
// directory. Safe for concurrent use. Every append is fsynced before
// it returns (unless Options.NoSync), so an acknowledged op survives a
// crash; a write or sync failure is sticky — the log refuses further
// appends, because the tail's durability is unknown.
type Log struct {
	// ckptMu serializes whole checkpoints (state export through
	// snapshot publication), so a slow checkpoint can never overwrite a
	// faster one's newer snapshot with stale state. It is always taken
	// before mu, never while holding it.
	ckptMu  sync.Mutex
	mu      sync.Mutex
	dir     string
	opts    Options
	seg     File
	segPath string
	segSize int64
	// segFirst is the first LSN of the active segment (its filename).
	segFirst uint64
	nextLSN  uint64
	// snapCover is the newest durable snapshot's per-shard LastLSN (nil
	// before any snapshot): the floor a new snapshot must not regress
	// below.
	snapCover []uint64
	// opBuf and frameBuf are reused append scratch space.
	opBuf    []byte
	frameBuf []byte
	closed   bool
	failed   error
}

// Open opens (creating if needed) the log directory, recovers its
// durable contents, truncates any torn tail of the final segment, and
// starts a fresh active segment for appends. The returned Recovered
// holds the snapshot and op records for the caller to replay; the
// returned Log is ready for appends continuing the LSN sequence.
func Open(dir string, opts Options) (*Log, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	rec, lastLSN, err := scan(dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opts: opts, nextLSN: lastLSN + 1}
	if rec.Snapshot != nil {
		l.snapCover = make([]uint64, len(rec.Snapshot))
		for i, se := range rec.Snapshot {
			l.snapCover[i] = se.LastLSN
		}
	}
	if err := l.startSegmentLocked(); err != nil {
		return nil, nil, err
	}
	return l, rec, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// NextLSN returns the LSN the next append will be assigned.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Append durably records one shard-tagged op and returns its LSN. It
// satisfies core.Journal (curried per shard — see the kairos layer).
func (l *Log) Append(shard int, op core.Op) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	if l.failed != nil {
		return 0, fmt.Errorf("wal: log failed earlier: %w", l.failed)
	}
	// Rotate before writing, never after: once a record is durable the
	// append must succeed, or the engine would roll back an op the log
	// will replay.
	if l.segSize >= l.opts.segmentBytes() {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	lsn := l.nextLSN
	payload, err := EncodeOp(l.opBuf[:0], lsn, shard, op)
	if err != nil {
		return 0, err
	}
	l.opBuf = payload
	frame := appendFrame(l.frameBuf[:0], payload)
	l.frameBuf = frame
	if _, err := l.seg.Write(frame); err != nil {
		l.failed = err
		return 0, err
	}
	if !l.opts.NoSync {
		if err := l.seg.Sync(); err != nil {
			l.failed = err
			return 0, err
		}
	}
	l.nextLSN++
	l.segSize += int64(len(frame))
	return lsn, nil
}

// Checkpoint durably writes a full snapshot (one state export per
// shard, in shard order, produced by the export callback) and
// compacts: closed segments whose every record is covered by all
// shards' snapshots are deleted, as are snapshot files the new one
// supersedes. The active segment is rotated so the log tail needed
// after this snapshot starts in a fresh file.
//
// The export callback runs under the log's checkpoint mutex, so
// concurrent Checkpoint calls fully serialize: no caller can export
// state, lose the race to a newer checkpoint that already compacted,
// and then publish its stale export as the newest snapshot — the
// silent-data-loss shape that motivates the callback signature. As a
// backstop (for exports produced outside the callback discipline), a
// snapshot whose per-shard LastLSN regresses below the newest durable
// snapshot's is refused.
func (l *Log) Checkpoint(export func() []*core.StateExport) error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	states := export()
	payload, err := EncodeSnapshot(nil, states)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if l.snapCover != nil {
		// The shard set may legitimately grow between snapshots
		// (Cluster.AddShard journals the membership change); it never
		// shrinks — drained shards keep their slot so shard-tagged LSNs
		// stay attributable.
		if len(states) < len(l.snapCover) {
			return fmt.Errorf("wal: checkpoint with %d shard(s), newest snapshot has %d (the shard set can grow but never shrink)", len(states), len(l.snapCover))
		}
		for i, cover := range l.snapCover {
			if states[i].LastLSN < cover {
				return fmt.Errorf("wal: stale checkpoint: shard %d exported at lsn %d, behind the newest snapshot's %d", i, states[i].LastLSN, cover)
			}
		}
	}
	lsn := l.nextLSN - 1
	path := filepath.Join(l.dir, snapName(lsn))
	tmp := path + ".tmp"
	f, err := l.opts.openFile(tmp)
	if err != nil {
		return err
	}
	buf := append(make([]byte, 0, len(snapMagic)+frameHeader+len(payload)), snapMagic...)
	buf = appendFrame(buf, payload)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if !l.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(l.dir)
	l.snapCover = make([]uint64, len(states))
	for i, se := range states {
		l.snapCover[i] = se.LastLSN
	}
	l.removeOldSnapshotsLocked(lsn)
	if err := l.rotateLocked(); err != nil {
		return err
	}
	l.compactLocked(states)
	return nil
}

// removeOldSnapshotsLocked deletes snapshot files superseded by the
// snapshot named keep, the only recovery source from now on; without
// this a periodically-checkpointing daemon accumulates a full-state
// file per interval forever.
func (l *Log) removeOldSnapshotsLocked(keep uint64) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	removed := false
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		lsn, err := parseHex(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"))
		if err != nil || lsn >= keep {
			continue
		}
		if os.Remove(filepath.Join(l.dir, name)) == nil {
			removed = true
		}
	}
	if removed {
		syncDir(l.dir)
	}
}

// Close syncs and closes the active segment. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.seg == nil {
		return nil
	}
	var err error
	if !l.opts.NoSync && l.failed == nil {
		err = l.seg.Sync()
	}
	if cerr := l.seg.Close(); err == nil {
		err = cerr
	}
	l.seg = nil
	return err
}

// startSegmentLocked opens a fresh active segment at nextLSN.
func (l *Log) startSegmentLocked() error {
	path := filepath.Join(l.dir, segName(l.nextLSN))
	f, err := l.opts.openFile(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return err
	}
	if !l.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	l.seg = f
	l.segPath = path
	l.segFirst = l.nextLSN
	l.segSize = int64(len(segMagic))
	syncDir(l.dir)
	return nil
}

// rotateLocked closes the active segment and starts the next one. A
// same-name rotation (no appends since the segment started) is a no-op.
// A rotation failure is sticky: the log's tail state is unknown, so
// further appends are refused.
func (l *Log) rotateLocked() error {
	if l.segFirst == l.nextLSN {
		return nil
	}
	if l.seg != nil {
		if err := l.seg.Close(); err != nil {
			l.seg = nil
			l.failed = err
			return err
		}
		l.seg = nil
	}
	if err := l.startSegmentLocked(); err != nil {
		l.failed = err
		return err
	}
	return nil
}

// compactLocked deletes closed segments entirely covered by the
// snapshot: a segment may go when every shard's snapshot already
// covers the segment's last LSN. Shards that never journaled an op
// (LastLSN zero) have no records anywhere and do not hold compaction
// back.
func (l *Log) compactLocked(states []*core.StateExport) {
	cover := snapshotFloor(states)
	if cover == 0 {
		return
	}
	segs := listSegments(l.dir)
	for i, s := range segs {
		if s.first == l.segFirst {
			continue // active
		}
		// The segment's records end where the next segment starts.
		var last uint64
		if i+1 < len(segs) {
			last = segs[i+1].first - 1
		} else {
			continue // no successor on disk; keep
		}
		if last <= cover {
			os.Remove(filepath.Join(l.dir, s.name))
		}
	}
	syncDir(l.dir)
}

// --- directory scanning / recovery ---

type segEntry struct {
	name  string
	first uint64
}

func segName(first uint64) string       { return fmt.Sprintf("seg-%016x.wal", first) }
func snapName(lsn uint64) string        { return fmt.Sprintf("snap-%016x.snap", lsn) }
func parseHex(s string) (uint64, error) { return strconv.ParseUint(s, 16, 64) }

func listSegments(dir string) []segEntry {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var segs []segEntry
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		first, err := parseHex(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"))
		if err != nil {
			continue
		}
		segs = append(segs, segEntry{name: name, first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs
}

// scan reads the directory's durable contents: the newest valid
// snapshot, every op record in LSN order, and the last durable LSN.
// Torn tails of the final segment are truncated on disk; leftover
// snapshot temp files are removed.
func scan(dir string) (*Recovered, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	var snaps []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name)) // crashed mid-checkpoint
			continue
		}
		if strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap") {
			if lsn, err := parseHex(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")); err == nil {
				snaps = append(snaps, lsn)
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })

	rec := &Recovered{}
	for _, lsn := range snaps {
		states, err := readSnapshot(filepath.Join(dir, snapName(lsn)))
		if err != nil {
			return nil, 0, fmt.Errorf("wal: snapshot %s: %w", snapName(lsn), err)
		}
		rec.Snapshot = states
		rec.SnapshotLSN = lsn
		rec.SnapshotPath = snapName(lsn)
		break
	}

	segs := listSegments(dir)
	lastLSN := rec.SnapshotLSN
	// Continuity: the on-disk LSN sequence is dense (an LSN is assigned
	// only once its record is durable), so records may be absent only
	// where compaction could have deleted them — at or below the
	// snapshot's compaction floor. Any other hole means a lost or
	// mis-deleted segment; replaying around it would silently diverge.
	cover := snapshotFloor(rec.Snapshot)
	next := uint64(1) // the LSN the next segment must continue from
	for i, s := range segs {
		if s.first < next {
			return nil, 0, fmt.Errorf("%w: segment %s overlaps records up to lsn %d", ErrCorrupt, s.name, next-1)
		}
		if s.first > next && s.first > cover+1 {
			return nil, 0, fmt.Errorf("%w: log records %d..%d missing (gap before segment %s exceeds snapshot coverage %d)", ErrCorrupt, next, s.first-1, s.name, cover)
		}
		if s.first > next {
			next = s.first // hole fully covered by the snapshot
		}
		path := filepath.Join(dir, s.name)
		ops, durable, torn, err := readSegment(path, s.first)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: segment %s: %w", s.name, err)
		}
		if torn {
			if i != len(segs)-1 {
				return nil, 0, fmt.Errorf("%w: segment %s torn but not final", ErrCorrupt, s.name)
			}
			if terr := os.Truncate(path, durable); terr != nil {
				return nil, 0, terr
			}
		}
		rec.Ops = append(rec.Ops, ops...)
		if n := len(ops); n > 0 {
			rec.Segments = append(rec.Segments, SegmentRange{Name: s.name, First: ops[0].LSN, Last: ops[n-1].LSN})
			next = ops[n-1].LSN + 1
		}
	}
	if next-1 > lastLSN {
		lastLSN = next - 1
	}
	return rec, lastLSN, nil
}

// snapshotFloor is the compaction floor of a recovered snapshot: the
// minimum LastLSN across shards that journaled at all (compactLocked
// uses the same floor, so every record above it is still on disk).
func snapshotFloor(states []*core.StateExport) uint64 {
	floor := uint64(0)
	have := false
	for _, se := range states {
		if se.LastLSN == 0 {
			continue
		}
		if !have || se.LastLSN < floor {
			floor = se.LastLSN
			have = true
		}
	}
	return floor
}

// readSegment parses one segment file. It returns the decoded ops, the
// byte offset of the end of the last whole record (the durable
// prefix), and whether the file was torn after it. A file too short
// for the magic counts as torn at offset zero only when it is brand
// new (empty); a wrong magic is corruption.
func readSegment(path string, first uint64) (ops []RecordedOp, durable int64, torn bool, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, err
	}
	if len(b) < len(segMagic) {
		// Crashed between creating the file and syncing its magic.
		return nil, 0, true, nil
	}
	if string(b[:len(segMagic)]) != segMagic {
		return nil, 0, false, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	off := len(segMagic)
	want := first
	for off < len(b) {
		payload, next, ferr := readFrame(b, off)
		if ferr == errTorn {
			// A torn tail is a prefix of one record with nothing after
			// it. If later records are decodable, this is bit rot (or an
			// overwritten frame) in the middle of acknowledged history;
			// truncating here would silently drop those records, so fail
			// loudly instead.
			if laterRecordExists(b, off, want) {
				return nil, 0, false, fmt.Errorf("%w: record %d at offset %d undecodable but later records follow (mid-segment corruption, not a torn tail)", ErrCorrupt, want, off)
			}
			return ops, int64(off), true, nil
		}
		if ferr != nil {
			return nil, 0, false, ferr
		}
		rec, derr := DecodeOp(payload)
		if derr != nil {
			return nil, 0, false, fmt.Errorf("record at offset %d: %w", off, derr)
		}
		if rec.LSN != want {
			return nil, 0, false, fmt.Errorf("%w: record at offset %d has lsn %d, want %d", ErrCorrupt, off, rec.LSN, want)
		}
		ops = append(ops, rec)
		off = next
		want++
	}
	return ops, int64(off), false, nil
}

// laterRecordExists scans the bytes after an undecodable frame at off
// for any whole, checksummed frame that decodes to an op record at or
// beyond the LSN the bad frame was supposed to hold. Finding one means
// acknowledged records follow the damage — a torn tail cannot look
// like that, because a crash tears the log's very last write.
func laterRecordExists(b []byte, off int, want uint64) bool {
	for o := off + 1; o+frameHeader <= len(b); o++ {
		payload, _, err := readFrame(b, o)
		if err != nil {
			continue
		}
		if rec, derr := DecodeOp(payload); derr == nil && rec.LSN >= want {
			return true
		}
	}
	return false
}

// readSnapshot parses one snapshot file.
func readSnapshot(path string) ([]*core.StateExport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < len(snapMagic) || string(b[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	payload, next, err := readFrame(b, len(snapMagic))
	if err != nil {
		if err == errTorn {
			return nil, fmt.Errorf("%w: torn snapshot record", ErrCorrupt)
		}
		return nil, err
	}
	if next != len(b) {
		return nil, fmt.Errorf("%w: %d trailing snapshot bytes", ErrCorrupt, len(b)-next)
	}
	states, err := DecodeSnapshot(payload)
	if err != nil {
		return nil, err
	}
	return states, nil
}

// syncDir fsyncs the directory so renames and removals are durable;
// best-effort (not all platforms support directory sync).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}
