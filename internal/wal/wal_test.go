package wal_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/appgen"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/routing"
	"repro/internal/wal"
)

// testApp returns a small deterministic application bundle.
func testApp(seed int64) *graph.Application {
	return appgen.New(appgen.NewConfig(appgen.Computation, appgen.Small), seed).Next()
}

// sampleOps returns a representative op stream for codec and log
// round-trip tests: every kind, with realistic field values.
func sampleOps(t testing.TB) []core.Op {
	t.Helper()
	app := testApp(7)
	layout := &core.OpLayout{
		Impls:      make([]int, len(app.Tasks)),
		Assignment: make([]int, len(app.Tasks)),
	}
	for i := range layout.Assignment {
		layout.Assignment[i] = i % 2
	}
	for i := range app.Channels {
		layout.Routes = append(layout.Routes, routing.Route{Channel: i, Path: []int{i % 2, 2, (i + 1) % 2}})
	}
	return []core.Op{
		{Kind: core.OpAdmit, Seq: 1, Instance: app.Name + "#1", App: app},
		{Kind: core.OpAdmit, Seq: 2, Instance: app.Name + "#2", App: app, Layout: layout},
		{Kind: core.OpElement, Elem: 3, Enabled: false},
		{Kind: core.OpLink, A: 0, B: 1, Enabled: false},
		{Kind: core.OpReadmit, Seq: 4, Instance: app.Name + "#1"},
		{Kind: core.OpLink, A: 0, B: 1, Enabled: true},
		{Kind: core.OpRelease, Instance: app.Name + "#4"},
		{Kind: core.OpElement, Elem: 3, Enabled: true},
		{Kind: core.OpEvict, Instance: app.Name + "#9"},
		{Kind: core.OpShardAdd},
		{Kind: core.OpShardDrain},
	}
}

// opEqual compares two ops field-wise; applications compare by their
// canonical bundle encoding.
func opEqual(t *testing.T, a, b core.Op) bool {
	t.Helper()
	if a.Kind != b.Kind || a.Seq != b.Seq || a.Instance != b.Instance ||
		a.Elem != b.Elem || a.A != b.A || a.B != b.B || a.Enabled != b.Enabled {
		return false
	}
	if (a.App == nil) != (b.App == nil) {
		return false
	}
	if (a.Layout == nil) != (b.Layout == nil) {
		return false
	}
	if a.Layout != nil && !reflect.DeepEqual(normalizeLayout(a.Layout), normalizeLayout(b.Layout)) {
		return false
	}
	if a.App != nil {
		ab, err := graph.Bytes(a.App)
		if err != nil {
			t.Fatalf("encoding app: %v", err)
		}
		bb, err := graph.Bytes(b.App)
		if err != nil {
			t.Fatalf("encoding app: %v", err)
		}
		return bytes.Equal(ab, bb)
	}
	return true
}

// normalizeLayout maps nil slices to empty ones: the codec does not
// distinguish them, and the tests should not either.
func normalizeLayout(l *core.OpLayout) *core.OpLayout {
	n := &core.OpLayout{
		Impls:      append([]int{}, l.Impls...),
		Assignment: append([]int{}, l.Assignment...),
		Routes:     append([]routing.Route{}, l.Routes...),
	}
	for i := range n.Routes {
		n.Routes[i].Path = append([]int{}, n.Routes[i].Path...)
	}
	return n
}

func TestOpCodecRoundTrip(t *testing.T) {
	for i, op := range sampleOps(t) {
		payload, err := wal.EncodeOp(nil, uint64(i+1), i%3, op)
		if err != nil {
			t.Fatalf("op %d: encode: %v", i, err)
		}
		rec, err := wal.DecodeOp(payload)
		if err != nil {
			t.Fatalf("op %d: decode: %v", i, err)
		}
		if rec.LSN != uint64(i+1) || rec.Shard != i%3 {
			t.Fatalf("op %d: decoded lsn/shard = %d/%d, want %d/%d", i, rec.LSN, rec.Shard, i+1, i%3)
		}
		if !opEqual(t, op, rec.Op) {
			t.Fatalf("op %d: round trip mismatch: %+v vs %+v", i, op, rec.Op)
		}
	}
}

func TestLogAppendReopen(t *testing.T) {
	dir := t.TempDir()
	log, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Ops) != 0 {
		t.Fatalf("fresh dir recovered %d ops and snapshot %v", len(rec.Ops), rec.Snapshot != nil)
	}
	ops := sampleOps(t)
	for i, op := range ops {
		lsn, err := log.Append(i%2, op)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("append %d: lsn = %d, want %d", i, lsn, i+1)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	log2, rec2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(rec2.Ops) != len(ops) {
		t.Fatalf("recovered %d ops, want %d", len(rec2.Ops), len(ops))
	}
	for i, r := range rec2.Ops {
		if r.LSN != uint64(i+1) || r.Shard != i%2 || !opEqual(t, ops[i], r.Op) {
			t.Fatalf("recovered op %d mismatch: %+v", i, r)
		}
	}
	if got := log2.NextLSN(); got != uint64(len(ops)+1) {
		t.Fatalf("NextLSN = %d, want %d", got, len(ops)+1)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	log, _, err := wal.Open(dir, wal.Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := log.Append(0, core.Op{Kind: core.OpRelease, Instance: "app#1"}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentNames(t, dir)
	if len(segs) < 3 {
		t.Fatalf("expected several segments at 128-byte rotation, got %v", segs)
	}
	_, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Ops) != n {
		t.Fatalf("recovered %d ops across segments, want %d", len(rec.Ops), n)
	}
	for i, r := range rec.Ops {
		if r.LSN != uint64(i+1) {
			t.Fatalf("op %d: lsn %d out of order", i, r.LSN)
		}
	}
}

func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	log, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := log.Append(0, core.Op{Kind: core.OpElement, Elem: i, Enabled: false}); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentNames(t, dir)[0])
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: chop a few bytes off the file tail.
	if err := os.WriteFile(seg, whole[:len(whole)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("recovery after torn tail: %v", err)
	}
	if len(rec.Ops) != 4 {
		t.Fatalf("recovered %d ops after torn final record, want 4", len(rec.Ops))
	}
	// The torn bytes must be gone from disk (truncated to the durable
	// prefix).
	after, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(whole) {
		t.Fatalf("segment not truncated: %d bytes, had %d", len(after), len(whole))
	}
}

func TestCorruptMiddleSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	log, _, err := wal.Open(dir, wal.Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := log.Append(0, core.Op{Kind: core.OpRelease, Instance: "x#1"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentNames(t, dir)
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %v", segs)
	}
	// Flip one payload byte in the FIRST segment: not a torn tail, so
	// recovery must refuse rather than silently drop committed ops.
	seg := filepath.Join(dir, segs[0])
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wal.Open(dir, wal.Options{}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("Open with corrupt middle segment: err = %v, want ErrCorrupt", err)
	}
}

// exportOf adapts fixed states to Checkpoint's export callback.
func exportOf(states ...*core.StateExport) func() []*core.StateExport {
	return func() []*core.StateExport { return states }
}

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	log, _, err := wal.Open(dir, wal.Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 10; i++ {
		last, err = log.Append(0, core.Op{Kind: core.OpElement, Elem: i, Enabled: false})
		if err != nil {
			t.Fatal(err)
		}
	}
	state := &core.StateExport{Seq: 0, LastLSN: last,
		DisabledElements: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}
	if err := log.Checkpoint(exportOf(state)); err != nil {
		t.Fatal(err)
	}
	// Everything before the snapshot is covered: only the fresh active
	// segment may remain.
	segs := segmentNames(t, dir)
	if len(segs) != 1 {
		t.Fatalf("segments after checkpoint = %v, want just the active one", segs)
	}
	// A few post-snapshot ops form the tail.
	for i := 0; i < 3; i++ {
		if _, err := log.Append(0, core.Op{Kind: core.OpElement, Elem: i, Enabled: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Snapshot) != 1 {
		t.Fatalf("snapshot shards = %d, want 1", len(rec.Snapshot))
	}
	got := rec.Snapshot[0]
	if got.LastLSN != last || len(got.DisabledElements) != 10 {
		t.Fatalf("snapshot state = %+v, want LastLSN %d with 10 disabled elements", got, last)
	}
	tail := 0
	for _, r := range rec.Ops {
		if r.LSN > got.LastLSN {
			tail++
		}
	}
	if tail != 3 {
		t.Fatalf("post-snapshot tail = %d ops, want 3", tail)
	}
}

// TestCheckpointRemovesOldSnapshots: a periodically-checkpointing
// daemon must not accumulate one full-state snapshot file per interval
// forever — each checkpoint deletes the files it supersedes.
func TestCheckpointRemovesOldSnapshots(t *testing.T) {
	dir := t.TempDir()
	log, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for round := 0; round < 4; round++ {
		for i := 0; i < 3; i++ {
			last, err = log.Append(0, core.Op{Kind: core.OpElement, Elem: round*3 + i, Enabled: false})
			if err != nil {
				t.Fatal(err)
			}
		}
		state := &core.StateExport{LastLSN: last}
		if err := log.Checkpoint(exportOf(state)); err != nil {
			t.Fatalf("checkpoint %d: %v", round, err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if snaps := snapshotNames(t, dir); len(snaps) != 1 {
		t.Fatalf("snapshot files after 4 checkpoints = %v, want only the newest", snaps)
	}
	_, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot == nil || rec.Snapshot[0].LastLSN != last {
		t.Fatalf("recovered snapshot = %+v, want LastLSN %d", rec.Snapshot, last)
	}
}

// TestStaleCheckpointRefused: the backstop against the lost-update
// shape — a snapshot whose coverage regresses behind the newest
// durable snapshot's must be refused, never published.
func TestStaleCheckpointRefused(t *testing.T) {
	dir := t.TempDir()
	log, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	var last uint64
	for i := 0; i < 5; i++ {
		if last, err = log.Append(0, core.Op{Kind: core.OpElement, Elem: i, Enabled: false}); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Checkpoint(exportOf(&core.StateExport{LastLSN: last})); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := log.Checkpoint(exportOf(&core.StateExport{LastLSN: last - 2})); err == nil {
		t.Fatal("stale checkpoint (coverage behind newest snapshot) was accepted")
	}
	// The shard set can legitimately grow (Cluster.AddShard) but never
	// shrink: a shrinking checkpoint would orphan the dropped shard's
	// records.
	if err := log.Checkpoint(exportOf(&core.StateExport{LastLSN: last}, &core.StateExport{LastLSN: last})); err != nil {
		t.Fatalf("checkpoint growing the shard set was refused: %v", err)
	}
	if err := log.Checkpoint(exportOf(&core.StateExport{LastLSN: last})); err == nil {
		t.Fatal("checkpoint shrinking the shard set was accepted")
	}
	// The refused attempts must not have displaced the newest snapshot.
	if snaps := snapshotNames(t, dir); len(snaps) != 1 {
		t.Fatalf("snapshot files = %v, want exactly the newest one", snaps)
	}
}

// TestMidSegmentCorruptionInFinalSegmentRejected: a bad CRC in the
// final segment followed by valid acknowledged records is bit rot, not
// a torn tail — recovery must fail loudly instead of truncating the
// valid records away.
func TestMidSegmentCorruptionInFinalSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	log, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := log.Append(0, core.Op{Kind: core.OpElement, Elem: i, Enabled: false}); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentNames(t, dir)
	seg := filepath.Join(dir, segs[len(segs)-1])
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte of the FIRST record's payload (after the 8-byte
	// file magic and 8-byte frame header): its CRC now mismatches while
	// records 2..5 after it remain whole.
	b[16] ^= 0xff
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wal.Open(dir, wal.Options{}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("Open with mid-segment corruption in final segment: err = %v, want ErrCorrupt", err)
	}
}

// TestMissingMiddleSegmentRejected: a hole in the LSN sequence that no
// snapshot covers (a lost or mis-deleted segment file) must fail
// recovery, not silently replay around the gap.
func TestMissingMiddleSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	log, _, err := wal.Open(dir, wal.Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := log.Append(0, core.Op{Kind: core.OpRelease, Instance: "x#1"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentNames(t, dir)
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %v", segs)
	}
	if err := os.Remove(filepath.Join(dir, segs[1])); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wal.Open(dir, wal.Options{}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("Open with a missing middle segment: err = %v, want ErrCorrupt", err)
	}
}

func snapshotNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "snap-") && strings.HasSuffix(e.Name(), ".snap") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

func TestSnapshotTmpCleanedUp(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "snap-00000000000000ff.snap.tmp")
	if err := os.WriteFile(tmp, []byte("partial snapshot from a crashed checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	log, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if rec.Snapshot != nil {
		t.Fatal("partial snapshot must not be recovered")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover checkpoint temp file not removed: %v", err)
	}
}

func TestStateCodecRoundTrip(t *testing.T) {
	app := testApp(11)
	se := &core.StateExport{
		Seq:              42,
		LastLSN:          99,
		Draining:         true,
		DisabledElements: []int{1, 5},
		DisabledLinks:    [][2]int{{0, 1}, {1, 0}},
		Admissions: []core.AdmissionExport{{
			Instance:   app.Name + "#3",
			App:        app,
			Impls:      make([]int, len(app.Tasks)),
			Assignment: make([]int, len(app.Tasks)),
			Routes:     nil,
		}},
	}
	for i := range se.Admissions[0].Assignment {
		se.Admissions[0].Assignment[i] = i % 4
	}
	b, err := wal.EncodeState(nil, se)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wal.DecodeState(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Draining {
		t.Error("Draining flag lost in the state round trip")
	}
	b2, err := wal.EncodeState(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("state encoding is not a decode/encode fixpoint")
	}
}

// TestSegmentCorruptionNoPanic flips every byte of a small segment in
// turn and asserts recovery never panics: each corruption either still
// recovers (a prefix) or reports an error.
func TestSegmentCorruptionNoPanic(t *testing.T) {
	srcDir := t.TempDir()
	log, _, err := wal.Open(srcDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	app := testApp(3)
	ops := []core.Op{
		{Kind: core.OpAdmit, Seq: 1, Instance: app.Name + "#1", App: app},
		{Kind: core.OpElement, Elem: 2, Enabled: false},
		{Kind: core.OpRelease, Instance: app.Name + "#1"},
	}
	for _, op := range ops {
		if _, err := log.Append(0, op); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	segName := segmentNames(t, srcDir)[0]
	pristine, err := os.ReadFile(filepath.Join(srcDir, segName))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	seg := filepath.Join(dir, segName)
	for i := range pristine {
		mutated := append([]byte(nil), pristine...)
		mutated[i] ^= 0x5a
		if err := os.WriteFile(seg, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		l, _, err := wal.Open(dir, wal.Options{})
		if err == nil {
			l.Close()
		}
		// Clean the extra segment Open starts, so the next iteration
		// sees only its own mutation.
		for _, name := range segmentNames(t, dir) {
			if name != segName {
				os.Remove(filepath.Join(dir, name))
			}
		}
	}
}

func segmentNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".wal") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}
