package wal_test

// Crash-injection harness: every file the log writes goes through a
// wrapper with a shared byte budget; once the budget runs out, writes
// tear mid-buffer and fail, and syncs fail — the moment the process
// "crashes". The property under test is the durability contract:
//
//  1. recovery always succeeds and lands on the last durable prefix
//     of acknowledged operations (torn final records and partial
//     checkpoint snapshots included), and
//  2. the recovered engine's exported state is byte-identical to a
//     reference engine replaying the same durable op sequence, and
//     allocation-identical to the live engine's state at that prefix.
//
// The live engine itself must also roll back the operation whose
// journal append crashed — asserted at the crash point.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	"repro/internal/appgen"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/replan"
	"repro/internal/wal"
	"repro/kairos"
)

var errCrash = errors.New("injected crash: byte budget exhausted")

// crashBudget is the shared countdown; all files of one log share it,
// like one process sharing one disk.
type crashBudget struct {
	remaining int
}

type crashFile struct {
	f *os.File
	b *crashBudget
}

func (c *crashFile) Write(p []byte) (int, error) {
	if c.b.remaining <= 0 {
		return 0, errCrash
	}
	if len(p) > c.b.remaining {
		// Torn write: part of the buffer reaches the disk, then the
		// process dies.
		n, _ := c.f.Write(p[:c.b.remaining])
		c.b.remaining = 0
		return n, errCrash
	}
	c.b.remaining -= len(p)
	return c.f.Write(p)
}

func (c *crashFile) Sync() error {
	if c.b.remaining <= 0 {
		return errCrash
	}
	return c.f.Sync()
}

func (c *crashFile) Close() error { return c.f.Close() }

func crashOpenFile(b *crashBudget) func(string) (wal.File, error) {
	return func(path string) (wal.File, error) {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		return &crashFile{f: f, b: b}, nil
	}
}

// journalFunc adapts a closure to core.Journal.
type journalFunc func(core.Op) (uint64, error)

func (f journalFunc) Append(op core.Op) (uint64, error) { return f(op) }

func freshPlatform() *platform.Platform { return platform.Mesh(4, 4, 4) }

// managerOptions configures every engine in a trial. The replanner
// makes the drive mix exercise OpReplan — the one multi-move journal
// record — so torn writes land inside replan records too; replay does
// not invoke it (OpReplan replays from the recorded layouts).
func managerOptions() []kairos.Option {
	return []kairos.Option{
		kairos.WithoutValidation(),
		kairos.WithReplanner(replan.LNS{Seed: 7}),
		kairos.WithReplanBudget(16),
	}
}

// cachedManagerOptions turns the layout cache on for every engine in a
// trial — live, reference replay, and real recovery alike — so crash
// injection also proves cached commits journal identically to full
// admissions (recovery replays OpAdmit through the same admit path,
// where a hit must reproduce the recorded layout bit-for-bit).
func cachedManagerOptions() []kairos.Option {
	return append(managerOptions(), kairos.WithLayoutCache(8))
}

func encState(t *testing.T, se *core.StateExport) []byte {
	t.Helper()
	b, err := wal.EncodeState(nil, se)
	if err != nil {
		t.Fatalf("encoding state: %v", err)
	}
	return b
}

// encAlloc encodes a state export with the sequence counter and LSN
// zeroed: pure allocation state. The live engine's counter can run
// ahead of the durable one (rejected attempts consume sequence numbers
// but are never journaled), so live-prefix comparisons use this form.
func encAlloc(t *testing.T, se *core.StateExport) []byte {
	t.Helper()
	cp := *se
	cp.Seq = 0
	cp.LastLSN = 0
	return encState(t, &cp)
}

// driveResult is what one randomized run against a crashing log leaves
// behind: the live engine's export after every acknowledged op, keyed
// by that op's LSN, and the live engine itself.
type driveResult struct {
	ack map[uint64]*core.StateExport
	m   *kairos.Manager
}

// drive runs a deterministic randomized op mix — admissions, releases,
// readmissions, fault flips, replanning passes, optional checkpoints —
// against a manager journaling into log, until the step budget or the
// crash. It asserts the crash rolls the in-flight op back.
func drive(t *testing.T, m *kairos.Manager, p *platform.Platform, log *wal.Log,
	rng *rand.Rand, steps int, checkpointEvery int) driveResult {
	t.Helper()
	gen := appgen.New(appgen.NewConfig(appgen.Communication, appgen.Small), rng.Int63())
	// One recurring shape alongside the fresh draws: repeated
	// admissions of the same graph are what a layout cache memoizes,
	// so cache-enabled runs crash inside hits too, not just misses.
	hot := gen.Next()
	res := driveResult{ack: map[uint64]*core.StateExport{0: m.ExportState()}, m: m}
	links := p.Links()
	ctx := context.Background()

	instances := func() []string {
		adm := m.Admitted()
		names := make([]string, 0, len(adm))
		for n := range adm {
			names = append(names, n)
		}
		sort.Strings(names)
		return names
	}

	for step := 0; step < steps; step++ {
		before := m.ExportState()
		var err error
		switch roll := rng.Intn(11); {
		case roll < 2:
			_, err = m.Admit(ctx, hot)
		case roll < 4:
			_, err = m.Admit(ctx, gen.Next())
		case roll < 6:
			if names := instances(); len(names) > 0 {
				err = m.Release(names[rng.Intn(len(names))])
			}
		case roll < 8:
			if names := instances(); len(names) > 0 {
				_, err = m.Readmit(ctx, names[rng.Intn(len(names))])
			}
		case roll < 9:
			err = m.SetElementEnabled(rng.Intn(len(p.Elements())), rng.Intn(2) == 0)
		case roll < 10:
			l := links[rng.Intn(len(links))]
			err = m.SetLinkEnabled(l.From, l.To, rng.Intn(2) == 0)
		default:
			// An accepted pass commits as ONE OpReplan record, so the
			// crash-point assertion below covers it unchanged: a failed
			// append must unwind every move of the pass.
			_, err = m.Replan(ctx)
		}
		if err != nil && errors.Is(err, kairos.ErrJournal) {
			// The crash point: the op whose append failed must have
			// been rolled back — allocation state identical to the
			// last acknowledged op's.
			if got, want := encAlloc(t, m.ExportState()), encAlloc(t, before); !bytes.Equal(got, want) {
				t.Fatalf("step %d: op with failed journal append was not rolled back", step)
			}
			return res
		}
		// Rejections, unknown instances and restored readmits are
		// normal traffic; every other error is a test bug.
		if err != nil && !errors.Is(err, kairos.ErrRejected) && !errors.Is(err, kairos.ErrUnknownInstance) {
			var pe *kairos.PhaseError
			if !errors.As(err, &pe) {
				t.Fatalf("step %d: unexpected error: %v", step, err)
			}
		}
		res.ack[m.LastLSN()] = m.ExportState()

		if checkpointEvery > 0 && step%checkpointEvery == checkpointEvery-1 {
			if err := kairos.Checkpoint(log, m); err != nil {
				return res // crashed mid-checkpoint; snapshot discarded
			}
		}
	}
	return res
}

// recoverAndCheck recovers dir twice — once as a plain scan feeding a
// reference engine that replays the durable ops, once through the real
// kairos.Recover path — and asserts both land on identical state that
// matches the live engine's acknowledged prefix. opts configures the
// reference and recovered engines; it must match what the live engine
// ran with, or replay legitimately diverges.
func recoverAndCheck(t *testing.T, dir string, res driveResult, opts []kairos.Option) {
	t.Helper()
	// Reference: scan the directory and replay what is durable.
	refLog, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reference scan: %v", err)
	}
	refLog.Close()
	ref := kairos.New(freshPlatform(), opts...)
	var snapLSN uint64
	if len(rec.Snapshot) > 0 {
		if err := ref.ImportState(rec.Snapshot[0]); err != nil {
			t.Fatalf("reference snapshot import: %v", err)
		}
		snapLSN = rec.Snapshot[0].LastLSN
	}
	for _, r := range rec.Ops {
		if r.LSN <= snapLSN {
			continue
		}
		if err := ref.ReplayOp(r.LSN, r.Op); err != nil {
			t.Fatalf("reference replay of lsn %d: %v", r.LSN, err)
		}
	}

	// Real recovery.
	m2, log2, err := kairos.Recover(dir, freshPlatform(), opts...)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer log2.Close()

	gotBytes := encState(t, m2.ExportState())
	refBytes := encState(t, ref.ExportState())
	if !bytes.Equal(gotBytes, refBytes) {
		t.Fatalf("recovered state differs from reference replay:\nrecovered: %x\nreference: %x", gotBytes, refBytes)
	}
	lsn := m2.LastLSN()
	live, ok := res.ack[lsn]
	if !ok {
		t.Fatalf("recovery landed on lsn %d, which was never acknowledged live", lsn)
	}
	if got, want := encAlloc(t, m2.ExportState()), encAlloc(t, live); !bytes.Equal(got, want) {
		t.Fatalf("recovered allocation state at lsn %d differs from the live engine's", lsn)
	}

	// The recovered manager must be serviceable: admit and release one
	// more application through the attached log.
	gen := appgen.New(appgen.NewConfig(appgen.Computation, appgen.Small), 1)
	adm, err := m2.Admit(context.Background(), gen.Next())
	if err != nil && !errors.Is(err, kairos.ErrRejected) {
		t.Fatalf("post-recovery admit: %v", err)
	}
	if err == nil {
		if err := m2.Release(adm.Instance); err != nil {
			t.Fatalf("post-recovery release: %v", err)
		}
	}
}

// TestCrashRecoveryProperty is the crash-injection property test:
// randomized op sequences, randomized byte budgets (kill points), with
// and without mid-run checkpoints. Every trial must recover onto the
// last durable prefix with byte-identical state.
func TestCrashRecoveryProperty(t *testing.T) {
	trials := 30
	if testing.Short() {
		trials = 8
	}
	runCrashRecoveryProperty(t, trials, managerOptions())
}

// TestCrashRecoveryPropertyWithCache reruns the crash-injection
// property with the layout cache enabled everywhere. Hot admissions
// commit through the memoized fast path, so the torn-write sweep now
// also covers journal appends and rollbacks of cached commits, and
// recovery replays them through a cache-enabled engine.
func TestCrashRecoveryPropertyWithCache(t *testing.T) {
	trials := 16
	if testing.Short() {
		trials = 6
	}
	runCrashRecoveryProperty(t, trials, cachedManagerOptions())
}

func runCrashRecoveryProperty(t *testing.T, trials int, opts []kairos.Option) {
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(trial) + 1))
			dir := t.TempDir()
			// Budgets from "dies almost immediately" to "survives the
			// whole run"; small segments force rotation crashes too.
			budget := &crashBudget{remaining: 256 + rng.Intn(1<<14)}
			log, rec, err := wal.Open(dir, wal.Options{
				SegmentBytes: 512,
				OpenFile:     crashOpenFile(budget),
			})
			if err != nil {
				return // crashed creating the very first segment: nothing to recover
			}
			if len(rec.Ops) != 0 {
				t.Fatalf("fresh dir has %d ops", len(rec.Ops))
			}
			p := freshPlatform()
			m := kairos.New(p, opts...)
			m.AttachJournal(journalFunc(func(op core.Op) (uint64, error) {
				return log.Append(0, op)
			}))
			// Odd trials checkpoint mid-run, so kill points also land
			// inside snapshot writes and after compactions.
			checkpointEvery := 0
			if trial%2 == 1 {
				checkpointEvery = 5 + rng.Intn(10)
			}
			res := drive(t, m, p, log, rng, 60, checkpointEvery)
			// The crash abandons the log without closing it, like a
			// real process death.
			recoverAndCheck(t, dir, res, opts)
		})
	}
}

// TestRecoveryAfterTailTruncation cuts a clean log's final segment at
// every possible byte offset and asserts each cut recovers exactly the
// durable prefix — the exhaustive torn-final-record sweep.
func TestRecoveryAfterTailTruncation(t *testing.T) {
	dir := t.TempDir()
	log, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := freshPlatform()
	m := kairos.New(p, managerOptions()...)
	m.AttachJournal(journalFunc(func(op core.Op) (uint64, error) {
		return log.Append(0, op)
	}))
	rng := rand.New(rand.NewSource(99))
	res := drive(t, m, p, log, rng, 25, 0)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segmentNames(t, dir)
	segPath := dir + "/" + segs[len(segs)-1]
	pristine, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	original := map[string]bool{}
	for _, name := range segs {
		original[name] = true
	}
	// A handful of random cuts plus the interesting boundaries.
	cuts := []int{0, 1, len(pristine) - 1, len(pristine) / 2}
	for i := 0; i < 12; i++ {
		cuts = append(cuts, rng.Intn(len(pristine)))
	}
	for _, cut := range cuts {
		if err := os.WriteFile(segPath, pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		m2, log2, err := kairos.Recover(dir, freshPlatform(), managerOptions()...)
		if err != nil {
			t.Fatalf("cut %d: Recover: %v", cut, err)
		}
		lsn := m2.LastLSN()
		live, ok := res.ack[lsn]
		if !ok {
			t.Fatalf("cut %d: recovery landed on unacknowledged lsn %d", cut, lsn)
		}
		if got, want := encAlloc(t, m2.ExportState()), encAlloc(t, live); !bytes.Equal(got, want) {
			t.Fatalf("cut %d: recovered state at lsn %d differs from live prefix", cut, lsn)
		}
		log2.Close()
		// Recovery truncates the cut segment and starts a new active
		// one; drop anything that was not part of the original layout
		// before the next cut (the cut segment itself is rewritten
		// from pristine above).
		for _, name := range segmentNames(t, dir) {
			if !original[name] {
				os.Remove(dir + "/" + name)
			}
		}
	}
}
