// Package wal implements the durable admission log behind the public
// package's WithDurability/Recover surface: a length-prefixed,
// CRC32-checksummed, fsync-on-commit write-ahead log of committed
// engine operations (core.Op), with full-state snapshots and
// checkpoint compaction.
//
// On disk a log directory holds segment files (seg-<firstLSN>.wal,
// rotated by size) and snapshot files (snap-<lsn>.snap, written by
// Checkpoint via temp-file + atomic rename). Every record — op or
// snapshot — is framed as
//
//	u32 payload length | u32 CRC32(payload) | payload
//
// in little-endian, and every file starts with an 8-byte magic. An op
// payload is the log sequence number, the owning shard, and the op
// itself; a snapshot payload is one canonical core.StateExport per
// shard. Only the tail of the final segment can be torn (appends are
// sequential and fsynced); recovery truncates it to the last durable
// record and treats a bad CRC anywhere else as corruption.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/routing"
)

const (
	segMagic  = "KWALSEG1"
	snapMagic = "KWALSNP1"
	// frameHeader is the record framing overhead: payload length + CRC.
	frameHeader = 8
	// maxRecord bounds a record's payload so a corrupt length prefix
	// cannot drive a giant allocation.
	maxRecord = 16 << 20
)

// ErrCorrupt matches every recovery failure caused by undecodable log
// or snapshot contents (bad magic, bad CRC outside the torn tail, an
// impossible field).
var ErrCorrupt = errors.New("wal: corrupt")

// RecordedOp is one decoded log record: the op, the shard whose engine
// journaled it, and its log sequence number.
type RecordedOp struct {
	LSN   uint64
	Shard int
	Op    core.Op
}

// --- primitive append helpers (little-endian) ---

func appendU8(b []byte, v uint8) []byte   { return append(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

func appendInts(b []byte, v []int) []byte {
	b = appendU32(b, uint32(len(v)))
	for _, x := range v {
		b = appendU32(b, uint32(int32(x)))
	}
	return b
}

// reader is a bounds-checked cursor over a payload; the first error
// sticks and every subsequent read returns zero values.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, r.off)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail("u8")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil || n > maxRecord || r.off+int(n) > len(r.b) {
		r.fail("bytes")
		return nil
	}
	v := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return v
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) ints() []int {
	n := r.u32()
	if r.err != nil || n > maxRecord/4 {
		r.fail("int slice")
		return nil
	}
	out := make([]int, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, int(int32(r.u32())))
	}
	return out
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.b)-r.off)
	}
	return nil
}

// --- record framing ---

// appendFrame appends the len|crc|payload frame for the payload.
func appendFrame(b, payload []byte) []byte {
	b = appendU32(b, uint32(len(payload)))
	b = appendU32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

// readFrame extracts the payload of the frame starting at b[off]. It
// reports (payload, next offset, nil) for a whole, checksummed frame;
// errTorn when the frame runs past the end of b or its CRC mismatches
// (indistinguishable torn-tail shapes); a wrapped ErrCorrupt for an
// impossible length.
var errTorn = errors.New("wal: torn record")

func readFrame(b []byte, off int) ([]byte, int, error) {
	if off+frameHeader > len(b) {
		return nil, off, errTorn
	}
	n := binary.LittleEndian.Uint32(b[off:])
	if n > maxRecord {
		return nil, off, fmt.Errorf("%w: record length %d exceeds limit", ErrCorrupt, n)
	}
	crc := binary.LittleEndian.Uint32(b[off+4:])
	start := off + frameHeader
	if start+int(n) > len(b) {
		return nil, off, errTorn
	}
	payload := b[start : start+int(n)]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, off, errTorn
	}
	return payload, start + int(n), nil
}

// --- op codec ---

// EncodeOp appends the op's record payload (not the frame) to b.
func EncodeOp(b []byte, lsn uint64, shard int, op core.Op) ([]byte, error) {
	if shard < 0 || op.Seq < 0 || op.Seq > math.MaxUint32 {
		return nil, fmt.Errorf("wal: op out of range (shard %d, seq %d)", shard, op.Seq)
	}
	b = appendU64(b, lsn)
	b = appendU32(b, uint32(shard))
	b = appendU8(b, uint8(op.Kind))
	switch op.Kind {
	case core.OpAdmit:
		app, err := graph.Bytes(op.App)
		if err != nil {
			return nil, fmt.Errorf("wal: encoding admitted application: %w", err)
		}
		b = appendU32(b, uint32(op.Seq))
		b = appendString(b, op.Instance)
		b = appendBytes(b, app)
		// Out-of-epoch optimistic commits carry their layout verbatim
		// (core.Op.Layout); replay restores it instead of re-planning.
		if op.Layout == nil {
			b = appendU8(b, 0)
		} else {
			b = appendU8(b, 1)
			b = appendLayout(b, op.Layout)
		}
	case core.OpRelease, core.OpEvict:
		b = appendString(b, op.Instance)
	case core.OpReadmit:
		b = appendU32(b, uint32(op.Seq))
		b = appendString(b, op.Instance)
	case core.OpElement:
		b = appendU32(b, uint32(int32(op.Elem)))
		b = appendU8(b, boolByte(op.Enabled))
	case core.OpLink:
		b = appendU32(b, uint32(int32(op.A)))
		b = appendU32(b, uint32(int32(op.B)))
		b = appendU8(b, boolByte(op.Enabled))
	case core.OpShardAdd, core.OpShardDrain:
		// Membership transitions carry no payload beyond the shard in
		// the record header.
	case core.OpReplan:
		// The whole accepted plan is one record: per move, the consumed
		// sequence number, the retired and fresh instance names, and the
		// committed layout verbatim (same shape as an OpAdmit layout).
		b = appendU32(b, uint32(op.Seq))
		b = appendU32(b, uint32(len(op.Moves)))
		for _, m := range op.Moves {
			if m.Seq < 0 || m.Seq > math.MaxUint32 {
				return nil, fmt.Errorf("wal: replan move seq %d out of range", m.Seq)
			}
			b = appendU32(b, uint32(m.Seq))
			b = appendString(b, m.From)
			b = appendString(b, m.To)
			b = appendLayout(b, &m.Layout)
		}
	default:
		return nil, fmt.Errorf("wal: unknown op kind %d", op.Kind)
	}
	return b, nil
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// appendLayout appends one committed layout (implementation indices,
// assignment, routes) — the shape shared by layout-carrying OpAdmit
// records and the per-move payload of OpReplan records.
func appendLayout(b []byte, l *core.OpLayout) []byte {
	b = appendInts(b, l.Impls)
	b = appendInts(b, l.Assignment)
	b = appendU32(b, uint32(len(l.Routes)))
	for _, rt := range l.Routes {
		b = appendU32(b, uint32(int32(rt.Channel)))
		b = appendInts(b, rt.Path)
	}
	return b
}

// layout decodes one committed layout into l (see appendLayout).
func (r *reader) layout(l *core.OpLayout) {
	l.Impls = r.ints()
	l.Assignment = r.ints()
	nRoutes := r.u32()
	if r.err == nil && nRoutes > maxRecord/8 {
		r.fail("layout routes")
		return
	}
	for i := uint32(0); i < nRoutes && r.err == nil; i++ {
		rt := routing.Route{Channel: int(int32(r.u32()))}
		rt.Path = r.ints()
		l.Routes = append(l.Routes, rt)
	}
}

// DecodeOp decodes one op record payload.
func DecodeOp(payload []byte) (RecordedOp, error) {
	r := &reader{b: payload}
	rec := RecordedOp{LSN: r.u64(), Shard: int(r.u32())}
	rec.Op.Kind = core.OpKind(r.u8())
	switch rec.Op.Kind {
	case core.OpAdmit:
		rec.Op.Seq = int(r.u32())
		rec.Op.Instance = r.str()
		appBytes := r.bytes()
		if r.err == nil {
			app, err := graph.FromBytes(appBytes)
			if err != nil {
				return rec, fmt.Errorf("%w: embedded application: %v", ErrCorrupt, err)
			}
			rec.Op.App = app
		}
		if r.u8() != 0 {
			l := &core.OpLayout{}
			r.layout(l)
			if r.err == nil {
				rec.Op.Layout = l
			}
		}
	case core.OpRelease, core.OpEvict:
		rec.Op.Instance = r.str()
	case core.OpReadmit:
		rec.Op.Seq = int(r.u32())
		rec.Op.Instance = r.str()
	case core.OpElement:
		rec.Op.Elem = int(int32(r.u32()))
		rec.Op.Enabled = r.u8() != 0
	case core.OpLink:
		rec.Op.A = int(int32(r.u32()))
		rec.Op.B = int(int32(r.u32()))
		rec.Op.Enabled = r.u8() != 0
	case core.OpShardAdd, core.OpShardDrain:
		// No payload.
	case core.OpReplan:
		rec.Op.Seq = int(r.u32())
		nMoves := r.u32()
		if r.err == nil && nMoves > maxRecord/8 {
			return rec, fmt.Errorf("%w: %d replan moves", ErrCorrupt, nMoves)
		}
		for i := uint32(0); i < nMoves && r.err == nil; i++ {
			m := core.OpMove{Seq: int(r.u32()), From: r.str(), To: r.str()}
			r.layout(&m.Layout)
			if r.err == nil {
				rec.Op.Moves = append(rec.Op.Moves, m)
			}
		}
	default:
		return rec, fmt.Errorf("%w: unknown op kind %d", ErrCorrupt, rec.Op.Kind)
	}
	if err := r.done(); err != nil {
		return rec, err
	}
	return rec, nil
}

// --- state codec ---

// EncodeState appends the canonical byte encoding of one engine state
// export to b. Recovery tests use equality of these bytes as the
// byte-identity oracle: two engines with equal encodings hold
// identical durable state.
func EncodeState(b []byte, se *core.StateExport) ([]byte, error) {
	if se.Seq < 0 || se.Seq > math.MaxUint32 {
		return nil, fmt.Errorf("wal: state seq %d out of range", se.Seq)
	}
	b = appendU32(b, uint32(se.Seq))
	b = appendU64(b, se.LastLSN)
	b = appendU8(b, boolByte(se.Draining))
	b = appendInts(b, se.DisabledElements)
	b = appendU32(b, uint32(len(se.DisabledLinks)))
	for _, l := range se.DisabledLinks {
		b = appendU32(b, uint32(int32(l[0])))
		b = appendU32(b, uint32(int32(l[1])))
	}
	b = appendU32(b, uint32(len(se.Admissions)))
	for _, a := range se.Admissions {
		app, err := graph.Bytes(a.App)
		if err != nil {
			return nil, fmt.Errorf("wal: encoding application of %q: %w", a.Instance, err)
		}
		b = appendString(b, a.Instance)
		b = appendBytes(b, app)
		b = appendInts(b, a.Impls)
		b = appendInts(b, a.Assignment)
		b = appendU32(b, uint32(len(a.Routes)))
		for _, rt := range a.Routes {
			b = appendU32(b, uint32(int32(rt.Channel)))
			b = appendInts(b, rt.Path)
		}
	}
	return b, nil
}

// DecodeState decodes one engine state export.
func DecodeState(payload []byte) (*core.StateExport, error) {
	r := &reader{b: payload}
	se := &core.StateExport{Seq: int(r.u32()), LastLSN: r.u64()}
	se.Draining = r.u8() != 0
	se.DisabledElements = r.ints()
	nLinks := r.u32()
	if r.err == nil && nLinks > maxRecord/8 {
		return nil, fmt.Errorf("%w: %d disabled links", ErrCorrupt, nLinks)
	}
	for i := uint32(0); i < nLinks && r.err == nil; i++ {
		se.DisabledLinks = append(se.DisabledLinks, [2]int{int(int32(r.u32())), int(int32(r.u32()))})
	}
	nAdm := r.u32()
	if r.err == nil && nAdm > maxRecord/8 {
		return nil, fmt.Errorf("%w: %d admissions", ErrCorrupt, nAdm)
	}
	for i := uint32(0); i < nAdm && r.err == nil; i++ {
		a := core.AdmissionExport{Instance: r.str()}
		appBytes := r.bytes()
		if r.err == nil {
			app, err := graph.FromBytes(appBytes)
			if err != nil {
				return nil, fmt.Errorf("%w: application of %q: %v", ErrCorrupt, a.Instance, err)
			}
			a.App = app
		}
		a.Impls = r.ints()
		a.Assignment = r.ints()
		nRoutes := r.u32()
		if r.err == nil && nRoutes > maxRecord/8 {
			return nil, fmt.Errorf("%w: %d routes", ErrCorrupt, nRoutes)
		}
		for j := uint32(0); j < nRoutes && r.err == nil; j++ {
			rt := routing.Route{Channel: int(int32(r.u32()))}
			rt.Path = r.ints()
			a.Routes = append(a.Routes, rt)
		}
		se.Admissions = append(se.Admissions, a)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return se, nil
}

// EncodeSnapshot appends the payload of a whole-cluster snapshot
// record: one state export per shard, in shard order.
func EncodeSnapshot(b []byte, states []*core.StateExport) ([]byte, error) {
	b = appendU32(b, uint32(len(states)))
	for i, se := range states {
		stateStart := len(b)
		b = appendU32(b, 0) // placeholder length
		var err error
		b, err = EncodeState(b, se)
		if err != nil {
			return nil, fmt.Errorf("wal: shard %d: %w", i, err)
		}
		binary.LittleEndian.PutUint32(b[stateStart:], uint32(len(b)-stateStart-4))
	}
	return b, nil
}

// DecodeSnapshot decodes a whole-cluster snapshot payload.
func DecodeSnapshot(payload []byte) ([]*core.StateExport, error) {
	r := &reader{b: payload}
	n := r.u32()
	if r.err == nil && n > 1<<16 {
		return nil, fmt.Errorf("%w: %d shards", ErrCorrupt, n)
	}
	states := make([]*core.StateExport, 0, n)
	for i := uint32(0); i < n; i++ {
		stateBytes := r.bytes()
		if r.err != nil {
			break
		}
		se, err := DecodeState(stateBytes)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		states = append(states, se)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return states, nil
}
