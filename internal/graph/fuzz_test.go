package graph_test

// Fuzz hardening for the binary application-bundle codec (paper
// §III-E): the decoder is the trust boundary of cmd/kairos — it reads
// arbitrary files — so it must never panic, and accepted input must
// reach a stable decode→encode→decode fixpoint.

import (
	"bytes"
	"testing"

	"repro/internal/appgen"
	"repro/internal/graph"
)

// FuzzBundleRoundTrip seeds the corpus with real generator output
// (what cmd/appgen writes) plus corrupt variants, then asserts that
// any input the decoder accepts re-encodes to a fixpoint and that
// corrupt input is rejected with an error, not a panic.
func FuzzBundleRoundTrip(f *testing.F) {
	for _, profile := range []appgen.Profile{appgen.Communication, appgen.Computation} {
		for _, size := range []appgen.Size{appgen.Small, appgen.Medium, appgen.Large} {
			for i, app := range appgen.Dataset(appgen.NewConfig(profile, size), 2, 7) {
				data, err := graph.Bytes(app)
				if err != nil {
					f.Fatalf("%v/%v app %d: %v", profile, size, i, err)
				}
				f.Add(data)
				// Truncations and bit flips of real bundles probe the
				// decoder's bounds checks.
				f.Add(data[:len(data)/2])
				flipped := bytes.Clone(data)
				flipped[len(flipped)/3] ^= 0xff
				f.Add(flipped)
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte("KAPP"))
	f.Add([]byte("not a bundle at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		app, err := graph.FromBytes(data)
		if err != nil {
			return // rejected without panicking: fine
		}
		// Accepted bundles decode to valid applications...
		if verr := app.Validate(); verr != nil {
			t.Fatalf("decoder accepted an invalid application: %v", verr)
		}
		// ...that survive encode→decode→encode byte-identically.
		enc1, err := graph.Bytes(app)
		if err != nil {
			t.Fatalf("re-encode of accepted bundle failed: %v", err)
		}
		app2, err := graph.FromBytes(enc1)
		if err != nil {
			t.Fatalf("decode of re-encoded bundle failed: %v", err)
		}
		enc2, err := graph.Bytes(app2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode→decode→encode is not a fixpoint:\n%x\nvs\n%x", enc1, enc2)
		}
		if !graph.IsBundle(enc1) {
			t.Fatal("re-encoded bundle lost its magic")
		}
	})
}
