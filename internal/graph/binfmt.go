package graph

// Binary application format. The Kairos prototype "specified a binary
// format for applications, that allows integration of the task graph,
// specification, and task implementations" and registered a Linux
// binary handler for it (paper §III-E). This file implements that
// bundle format: a compact, versioned, little-endian encoding of an
// Application that cmd/appgen writes and cmd/kairos loads.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/resource"
)

// Magic identifies an encoded application bundle ("Kairos APPlication").
var Magic = [4]byte{'K', 'A', 'P', 'P'}

// FormatVersion is the current bundle format version.
const FormatVersion uint16 = 1

// ErrBadMagic is returned when decoding data that is not a bundle.
var ErrBadMagic = errors.New("graph: not a Kairos application bundle")

// ErrBadVersion is returned for unsupported bundle versions.
var ErrBadVersion = errors.New("graph: unsupported bundle version")

const (
	maxStringLen = 1 << 12
	maxCount     = 1 << 20
)

type encoder struct {
	w   io.Writer
	err error
}

func (e *encoder) write(v any) {
	if e.err != nil {
		return
	}
	e.err = binary.Write(e.w, binary.LittleEndian, v)
}

func (e *encoder) str(s string) {
	if len(s) > maxStringLen {
		if e.err == nil {
			e.err = fmt.Errorf("graph: string too long (%d bytes)", len(s))
		}
		return
	}
	e.write(uint16(len(s)))
	if e.err == nil {
		_, e.err = io.WriteString(e.w, s)
	}
}

func (e *encoder) vec(v resource.Vector) {
	e.write(uint16(len(v)))
	for _, x := range v {
		e.write(x)
	}
}

// Encode writes the application bundle to w.
func Encode(w io.Writer, a *Application) error {
	if err := a.Validate(); err != nil {
		return fmt.Errorf("graph: refusing to encode invalid application: %w", err)
	}
	e := &encoder{w: w}
	e.write(Magic)
	e.write(FormatVersion)
	e.str(a.Name)
	e.write(math.Float64bits(a.Constraints.MinThroughput))
	e.write(a.Constraints.MaxLatency)

	e.write(uint32(len(a.Tasks)))
	for _, t := range a.Tasks {
		e.str(t.Name)
		e.write(uint8(t.Kind))
		e.write(int32(t.FixedElement))
		e.write(uint16(len(t.Implementations)))
		for _, im := range t.Implementations {
			e.str(im.Name)
			e.str(im.Target)
			e.vec(im.Requires)
			e.write(math.Float64bits(im.Cost))
			e.write(im.ExecTime)
		}
	}
	e.write(uint32(len(a.Channels)))
	for _, c := range a.Channels {
		e.write(uint32(c.Src))
		e.write(uint32(c.Dst))
		e.write(uint32(c.Produce))
		e.write(uint32(c.Consume))
		e.write(c.TokenSize)
		e.write(uint32(c.Initial))
	}
	return e.err
}

// Bytes encodes the application into a fresh byte slice.
func Bytes(a *Application) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, a); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

type decoder struct {
	r   io.Reader
	err error
}

func (d *decoder) read(v any) {
	if d.err != nil {
		return
	}
	d.err = binary.Read(d.r, binary.LittleEndian, v)
}

func (d *decoder) str() string {
	var n uint16
	d.read(&n)
	if d.err != nil {
		return ""
	}
	if int(n) > maxStringLen {
		d.err = fmt.Errorf("graph: string length %d exceeds limit", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.err = err
		return ""
	}
	return string(b)
}

func (d *decoder) vec() resource.Vector {
	var n uint16
	d.read(&n)
	if d.err != nil {
		return nil
	}
	if int(n) > 64 {
		d.err = fmt.Errorf("graph: resource vector with %d axes exceeds limit", n)
		return nil
	}
	v := make(resource.Vector, n)
	for i := range v {
		d.read(&v[i])
	}
	return v
}

// Decode reads one application bundle from r.
func Decode(r io.Reader) (*Application, error) {
	d := &decoder{r: r}
	var magic [4]byte
	d.read(&magic)
	if d.err != nil {
		return nil, d.err
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	var version uint16
	d.read(&version)
	if d.err == nil && version != FormatVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}

	a := New(d.str())
	var thr uint64
	d.read(&thr)
	a.Constraints.MinThroughput = math.Float64frombits(thr)
	d.read(&a.Constraints.MaxLatency)

	var nTasks uint32
	d.read(&nTasks)
	if d.err == nil && nTasks > maxCount {
		return nil, fmt.Errorf("graph: task count %d exceeds limit", nTasks)
	}
	for i := uint32(0); i < nTasks && d.err == nil; i++ {
		name := d.str()
		var kind uint8
		var fixed int32
		var nImpl uint16
		d.read(&kind)
		d.read(&fixed)
		d.read(&nImpl)
		var impls []Implementation
		for j := uint16(0); j < nImpl && d.err == nil; j++ {
			im := Implementation{Name: d.str(), Target: d.str(), Requires: d.vec()}
			var cost uint64
			d.read(&cost)
			im.Cost = math.Float64frombits(cost)
			d.read(&im.ExecTime)
			impls = append(impls, im)
		}
		id := a.AddTask(name, TaskKind(kind), impls...)
		a.Tasks[id].FixedElement = int(fixed)
	}

	var nChans uint32
	d.read(&nChans)
	if d.err == nil && nChans > maxCount {
		return nil, fmt.Errorf("graph: channel count %d exceeds limit", nChans)
	}
	for i := uint32(0); i < nChans && d.err == nil; i++ {
		var src, dst, produce, consume, initial uint32
		var tokenSize int64
		d.read(&src)
		d.read(&dst)
		d.read(&produce)
		d.read(&consume)
		d.read(&tokenSize)
		d.read(&initial)
		if d.err == nil {
			id := a.AddChannelRated(int(src), int(dst), int(produce), int(consume), tokenSize)
			a.Channels[id].Initial = int(initial)
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("graph: truncated bundle: %w", d.err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("graph: decoded bundle is invalid: %w", err)
	}
	return a, nil
}

// FromBytes decodes an application bundle from b.
func FromBytes(b []byte) (*Application, error) {
	return Decode(bytes.NewReader(b))
}

// IsBundle reports whether b starts with the bundle magic — the check
// the paper's Linux binary handler performs to "distinguish MPSoC
// applications from operating system tools".
func IsBundle(b []byte) bool {
	return len(b) >= 4 && [4]byte(b[:4]) == Magic
}
