// Package graph models applications as annotated task graphs
// A = ⟨T, C⟩ (paper §III): tasks with one or more candidate
// implementations (different IP providers, QoS levels, memory types or
// I/O interfaces — paper §I), directed communication channels, and the
// performance constraints carried by the application specification.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/resource"
)

// TaskKind classifies tasks the way the application generator does
// (paper §IV: "the structure of an application can be specified with a
// number of input, internal, and output tasks").
type TaskKind uint8

const (
	// Internal tasks only communicate with other tasks.
	Internal TaskKind = iota
	// Input tasks receive external streams (often location-fixed).
	Input
	// Output tasks emit external streams (often location-fixed).
	Output
)

func (k TaskKind) String() string {
	switch k {
	case Input:
		return "input"
	case Output:
		return "output"
	default:
		return "internal"
	}
}

// NoFixedElement marks a task without a pre-determined location.
const NoFixedElement = -1

// Implementation is one way to execute a task: it targets one element
// type and demands a resource vector from it. Cost is the base cost of
// using this implementation (e.g. energy), which the binding phase
// minimizes; ExecTime is the firing duration used by the SDF
// validation phase, in abstract time units.
type Implementation struct {
	Name     string
	Target   string // element type (platform.TypeDSP, ...)
	Requires resource.Vector
	Cost     float64
	ExecTime int64
}

// Task is one node of the task graph.
type Task struct {
	ID   int
	Name string
	Kind TaskKind
	// FixedElement pins the task to a specific platform element
	// (paper §III-A: I/O locations "may be fixed in the binding
	// phase"); NoFixedElement when free.
	FixedElement int
	// Implementations are the candidate implementations; binding
	// selects exactly one. Must be non-empty for a valid app.
	Implementations []Implementation
}

// Channel is one directed communication channel between two tasks.
// Produce/Consume are the SDF token rates per firing of the source and
// destination task; TokenSize scales the communication volume.
type Channel struct {
	ID       int
	Src, Dst int
	Produce  int
	Consume  int
	// TokenSize is the size of one token in abstract units; it
	// weights the communication-distance term of the mapping cost.
	TokenSize int64
	// Initial is the number of tokens initially present on the
	// channel. Feedback channels (e.g. partial-sum loops) need
	// initial tokens to avoid deadlock in the SDF model.
	Initial int
}

// Constraints are the application's performance requirements verified
// by the validation phase. Zero values mean "unconstrained".
type Constraints struct {
	// MinThroughput is the minimum number of graph iterations per
	// 1000 time units the application must sustain.
	MinThroughput float64
	// MaxLatency is the maximum source-to-sink latency in time
	// units. The validation phase expresses it as a throughput
	// constraint, as in the paper (§II, [12]).
	MaxLatency int64
}

// Application is an annotated task graph plus its constraints.
type Application struct {
	Name        string
	Tasks       []*Task
	Channels    []*Channel
	Constraints Constraints

	// lazily built adjacency caches; invalidated by Normalize.
	out, in [][]int // channel IDs per task
	und     [][]int // undirected task adjacency (deduplicated)
}

// New returns an empty application with the given name.
func New(name string) *Application { return &Application{Name: name} }

// AddTask appends a task and returns its ID.
func (a *Application) AddTask(name string, kind TaskKind, impls ...Implementation) int {
	id := len(a.Tasks)
	a.Tasks = append(a.Tasks, &Task{
		ID: id, Name: name, Kind: kind,
		FixedElement:    NoFixedElement,
		Implementations: impls,
	})
	a.invalidate()
	return id
}

// AddChannel appends a unit-rate channel from src to dst and returns
// its ID.
func (a *Application) AddChannel(src, dst int) int {
	return a.AddChannelRated(src, dst, 1, 1, 1)
}

// AddChannelRated appends a channel with explicit SDF rates and token
// size, returning its ID.
func (a *Application) AddChannelRated(src, dst, produce, consume int, tokenSize int64) int {
	id := len(a.Channels)
	a.Channels = append(a.Channels, &Channel{
		ID: id, Src: src, Dst: dst,
		Produce: produce, Consume: consume, TokenSize: tokenSize,
	})
	a.invalidate()
	return id
}

func (a *Application) invalidate() { a.out, a.in, a.und = nil, nil, nil }

// Validate checks structural well-formedness: channel endpoints in
// range, no self-loops, every task with at least one implementation
// with positive execution time, positive rates.
func (a *Application) Validate() error {
	if len(a.Tasks) == 0 {
		return fmt.Errorf("graph: application %q has no tasks", a.Name)
	}
	for i, t := range a.Tasks {
		if t.ID != i {
			return fmt.Errorf("graph: task %q has ID %d at index %d", t.Name, t.ID, i)
		}
		if len(t.Implementations) == 0 {
			return fmt.Errorf("graph: task %q has no implementations", t.Name)
		}
		for _, impl := range t.Implementations {
			if impl.Target == "" {
				return fmt.Errorf("graph: task %q implementation %q has no target type", t.Name, impl.Name)
			}
			if impl.ExecTime <= 0 {
				return fmt.Errorf("graph: task %q implementation %q has non-positive exec time", t.Name, impl.Name)
			}
			if !impl.Requires.NonNegative() {
				return fmt.Errorf("graph: task %q implementation %q has negative requirements", t.Name, impl.Name)
			}
		}
	}
	for _, c := range a.Channels {
		if c.Src < 0 || c.Src >= len(a.Tasks) || c.Dst < 0 || c.Dst >= len(a.Tasks) {
			return fmt.Errorf("graph: channel %d endpoints (%d→%d) out of range", c.ID, c.Src, c.Dst)
		}
		if c.Src == c.Dst {
			return fmt.Errorf("graph: channel %d is a self-loop on task %d", c.ID, c.Src)
		}
		if c.Produce <= 0 || c.Consume <= 0 {
			return fmt.Errorf("graph: channel %d has non-positive rates %d/%d", c.ID, c.Produce, c.Consume)
		}
		if c.Initial < 0 {
			return fmt.Errorf("graph: channel %d has negative initial tokens", c.ID)
		}
	}
	return nil
}

func (a *Application) buildAdj() {
	if a.out != nil {
		return
	}
	n := len(a.Tasks)
	a.out = make([][]int, n)
	a.in = make([][]int, n)
	und := make([]map[int]bool, n)
	for i := range und {
		und[i] = make(map[int]bool)
	}
	for _, c := range a.Channels {
		a.out[c.Src] = append(a.out[c.Src], c.ID)
		a.in[c.Dst] = append(a.in[c.Dst], c.ID)
		und[c.Src][c.Dst] = true
		und[c.Dst][c.Src] = true
	}
	a.und = make([][]int, n)
	for i, set := range und {
		for n := range set {
			a.und[i] = append(a.und[i], n)
		}
		sort.Ints(a.und[i])
	}
}

// OutChannels returns the IDs of channels leaving task t.
func (a *Application) OutChannels(t int) []int { a.buildAdj(); return a.out[t] }

// InChannels returns the IDs of channels entering task t.
func (a *Application) InChannels(t int) []int { a.buildAdj(); return a.in[t] }

// UndirectedNeighbors returns the distinct tasks adjacent to t,
// ignoring channel direction, in ID order.
func (a *Application) UndirectedNeighbors(t int) []int { a.buildAdj(); return a.und[t] }

// Degree returns the undirected degree d(t): the number of distinct
// communication peers of task t.
func (a *Application) Degree(t int) int { a.buildAdj(); return len(a.und[t]) }

// MinDegree returns δ(T), the smallest degree in the task graph, and
// the lowest-ID task attaining it. The mapping phase starts from such
// a task when no task has a fixed location (paper §III-A).
func (a *Application) MinDegree() (degree, task int) {
	a.buildAdj()
	degree, task = len(a.Channels)+1, -1
	for _, t := range a.Tasks {
		if d := len(a.und[t.ID]); d < degree {
			degree, task = d, t.ID
		}
	}
	return degree, task
}

// Neighborhoods partitions the tasks reachable from t0 into groups of
// equal undirected distance: result[i] is N_i, the i-th undirected
// neighborhood of the origin set (paper §III-A, step 1). result[0] is
// the origin set itself. Tasks unreachable from t0 are appended as
// additional neighborhoods in BFS order from the lowest-ID unreached
// task, so disconnected applications still map completely.
func (a *Application) Neighborhoods(t0 []int) [][]int {
	a.buildAdj()
	n := len(a.Tasks)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	var levels [][]int
	bfs := func(seeds []int) {
		base := len(levels)
		cur := []int{}
		for _, s := range seeds {
			if s >= 0 && s < n && dist[s] < 0 {
				dist[s] = base
				cur = append(cur, s)
			}
		}
		for len(cur) > 0 {
			sort.Ints(cur)
			levels = append(levels, cur)
			var next []int
			for _, t := range cur {
				for _, nb := range a.und[t] {
					if dist[nb] < 0 {
						dist[nb] = dist[t] + 1
						next = append(next, nb)
					}
				}
			}
			cur = next
		}
	}
	bfs(t0)
	for {
		rest := -1
		for i := 0; i < n; i++ {
			if dist[i] < 0 {
				rest = i
				break
			}
		}
		if rest < 0 {
			break
		}
		bfs([]int{rest})
	}
	return levels
}

// FixedTasks returns the IDs of tasks with a fixed element, in order.
func (a *Application) FixedTasks() []int {
	var out []int
	for _, t := range a.Tasks {
		if t.FixedElement != NoFixedElement {
			out = append(out, t.ID)
		}
	}
	return out
}

// Clone returns a deep copy of the application.
func (a *Application) Clone() *Application {
	b := New(a.Name)
	b.Constraints = a.Constraints
	for _, t := range a.Tasks {
		impls := make([]Implementation, len(t.Implementations))
		for i, im := range t.Implementations {
			impls[i] = im
			impls[i].Requires = im.Requires.Clone()
		}
		b.Tasks = append(b.Tasks, &Task{
			ID: t.ID, Name: t.Name, Kind: t.Kind,
			FixedElement: t.FixedElement, Implementations: impls,
		})
	}
	for _, c := range a.Channels {
		cc := *c
		b.Channels = append(b.Channels, &cc)
	}
	return b
}

// String summarizes the application.
func (a *Application) String() string {
	return fmt.Sprintf("app{%s: %d tasks, %d channels}", a.Name, len(a.Tasks), len(a.Channels))
}
