package graph

import (
	"fmt"

	"repro/internal/resource"
)

// BeamformingConfig parameterizes the case-study application. The
// defaults reproduce the paper's beamformer: 53 tasks in a tree-like
// structure requiring all 45 DSPs of the CRISP platform (§IV-A).
type BeamformingConfig struct {
	// Groups is the number of antenna groups (the CRISP platform
	// has 5 DSP packages).
	Groups int
	// SubHeads is the number of second-level distribution tasks per
	// group; each subhead feeds FiltersPerSub filter tasks.
	SubHeads int
	// FiltersPerSub is the number of per-antenna filter tasks per
	// subhead.
	FiltersPerSub int
	// SourceElement is the platform element ID the stream source is
	// pinned to (the io-in tile); NoFixedElement leaves it free.
	SourceElement int
	// DSPShare is the compute share (0–100] each DSP task demands;
	// near-100 forces one task per DSP as in the paper.
	DSPShare int64
}

// DefaultBeamforming is the paper's configuration: 5 groups × (1 head
// + 2 subheads + 6 filters) = 45 DSP tasks, plus source, distributor,
// 5 accumulators and a combiner: 53 tasks total.
func DefaultBeamforming(sourceElement int) BeamformingConfig {
	return BeamformingConfig{
		Groups:        5,
		SubHeads:      2,
		FiltersPerSub: 3,
		SourceElement: sourceElement,
		DSPShare:      90,
	}
}

// Beamforming builds the case-study application: a tree-like
// beamformer. Antenna data flows down the tree, partial sums flow
// back up on feedback channels primed with one initial token:
//
//	source (io) → distributor (fpga) → G group heads (dsp)
//	head_g → S subheads (dsp) → F filters each (dsp)   [distribute]
//	filter → subhead → head (Initial=1)                [combine]
//	head_g → accumulator_g (mem) → combiner (gpp)
//
// With the defaults this yields 53 tasks of which 45 target DSPs at a
// 90% compute share, so admission requires all 45 DSPs — "a difficult
// mapping problem" per the paper.
func Beamforming(cfg BeamformingConfig) *Application {
	a := New("beamforming")

	dspImpl := func(name string, execTime int64) Implementation {
		return Implementation{
			Name:     name,
			Target:   "dsp",
			Requires: resource.Of(cfg.DSPShare, 48, 0, 0),
			Cost:     10,
			ExecTime: execTime,
		}
	}

	source := a.AddTask("source", Input, Implementation{
		Name:     "adc-stream",
		Target:   "io",
		Requires: resource.Of(5, 8, 1, 0),
		Cost:     1,
		ExecTime: 5,
	})
	a.Tasks[source].FixedElement = cfg.SourceElement

	dist := a.AddTask("distributor", Internal, Implementation{
		Name:     "fpga-dist",
		Target:   "fpga",
		Requires: resource.Of(50, 64, 0, 200),
		Cost:     5,
		ExecTime: 4,
	})
	a.AddChannelRated(source, dist, 1, 1, 16)

	combiner := a.AddTask("combiner", Output, Implementation{
		Name:     "arm-combine",
		Target:   "gpp",
		Requires: resource.Of(40, 64, 1, 0),
		Cost:     8,
		ExecTime: 6,
	})

	for g := 0; g < cfg.Groups; g++ {
		head := a.AddTask(fmt.Sprintf("head%d", g), Internal, dspImpl("head-fir", 8))
		a.AddChannelRated(dist, head, 1, 1, 8)

		acc := a.AddTask(fmt.Sprintf("acc%d", g), Internal, Implementation{
			Name:     "mem-acc",
			Target:   "mem",
			Requires: resource.Of(0, 600, 0, 0),
			Cost:     2,
			ExecTime: 3,
		})

		for s := 0; s < cfg.SubHeads; s++ {
			sub := a.AddTask(fmt.Sprintf("sub%d-%d", g, s), Internal, dspImpl("sub-fir", 8))
			a.AddChannelRated(head, sub, 1, 1, 8)
			for f := 0; f < cfg.FiltersPerSub; f++ {
				filt := a.AddTask(fmt.Sprintf("filter%d-%d-%d", g, s, f), Internal, dspImpl("chan-fir", 8))
				a.AddChannelRated(sub, filt, 1, 1, 8)
				// Partial sums travel back up; the feedback loop is
				// primed with one token to avoid SDF deadlock.
				up := a.AddChannelRated(filt, sub, 1, 1, 4)
				a.Channels[up].Initial = 1
			}
			up := a.AddChannelRated(sub, head, 1, 1, 4)
			a.Channels[up].Initial = 1
		}
		a.AddChannelRated(head, acc, 1, 1, 4)
		a.AddChannelRated(acc, combiner, 1, 1, 4)
	}

	a.Constraints = Constraints{MinThroughput: 1, MaxLatency: 0}
	return a
}
