package graph

import (
	"errors"
	"testing"

	"repro/internal/resource"
)

func impl(target string) Implementation {
	return Implementation{
		Name: "i-" + target, Target: target,
		Requires: resource.Of(50, 16, 0, 0),
		Cost:     1, ExecTime: 10,
	}
}

// chain builds t0 → t1 → ... → t(n-1).
func chain(n int) *Application {
	a := New("chain")
	for i := 0; i < n; i++ {
		a.AddTask("t", Internal, impl("dsp"))
	}
	for i := 0; i+1 < n; i++ {
		a.AddChannel(i, i+1)
	}
	return a
}

func TestAddTaskAndChannel(t *testing.T) {
	a := New("x")
	t0 := a.AddTask("src", Input, impl("io"))
	t1 := a.AddTask("dst", Output, impl("dsp"))
	c := a.AddChannelRated(t0, t1, 2, 3, 7)
	if t0 != 0 || t1 != 1 || c != 0 {
		t.Fatalf("IDs = %d,%d,%d", t0, t1, c)
	}
	ch := a.Channels[c]
	if ch.Produce != 2 || ch.Consume != 3 || ch.TokenSize != 7 {
		t.Errorf("channel fields wrong: %+v", ch)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	if err := New("empty").Validate(); err == nil {
		t.Error("empty app should be invalid")
	}

	a := New("noimpl")
	a.AddTask("t", Internal)
	if err := a.Validate(); err == nil {
		t.Error("task without implementations should be invalid")
	}

	b := chain(2)
	b.Channels[0].Dst = 9
	if err := b.Validate(); err == nil {
		t.Error("out-of-range channel should be invalid")
	}

	c := chain(2)
	c.Channels[0].Dst = 0
	if err := c.Validate(); err == nil {
		t.Error("self-loop should be invalid")
	}

	d := chain(2)
	d.Channels[0].Produce = 0
	if err := d.Validate(); err == nil {
		t.Error("zero rate should be invalid")
	}

	e := chain(1)
	e.Tasks[0].Implementations[0].ExecTime = 0
	if err := e.Validate(); err == nil {
		t.Error("zero exec time should be invalid")
	}
}

func TestAdjacency(t *testing.T) {
	// Diamond: 0→1, 0→2, 1→3, 2→3.
	a := New("diamond")
	for i := 0; i < 4; i++ {
		a.AddTask("t", Internal, impl("dsp"))
	}
	a.AddChannel(0, 1)
	a.AddChannel(0, 2)
	a.AddChannel(1, 3)
	a.AddChannel(2, 3)

	if got := a.OutChannels(0); len(got) != 2 {
		t.Errorf("OutChannels(0) = %v", got)
	}
	if got := a.InChannels(3); len(got) != 2 {
		t.Errorf("InChannels(3) = %v", got)
	}
	if got := a.UndirectedNeighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("UndirectedNeighbors(1) = %v, want [0 3]", got)
	}
	if a.Degree(0) != 2 || a.Degree(3) != 2 {
		t.Errorf("degrees: %d, %d", a.Degree(0), a.Degree(3))
	}
}

func TestDegreeDeduplicatesParallelChannels(t *testing.T) {
	a := New("par")
	a.AddTask("a", Internal, impl("dsp"))
	a.AddTask("b", Internal, impl("dsp"))
	a.AddChannel(0, 1)
	a.AddChannel(0, 1) // parallel channel
	a.AddChannel(1, 0) // reverse channel
	if a.Degree(0) != 1 {
		t.Errorf("Degree with parallel channels = %d, want 1", a.Degree(0))
	}
}

func TestMinDegree(t *testing.T) {
	// Star: center 0 connected to 1,2,3; leaf degree 1.
	a := New("star")
	for i := 0; i < 4; i++ {
		a.AddTask("t", Internal, impl("dsp"))
	}
	for i := 1; i < 4; i++ {
		a.AddChannel(0, i)
	}
	deg, task := a.MinDegree()
	if deg != 1 || task != 1 {
		t.Errorf("MinDegree = %d at task %d, want 1 at task 1", deg, task)
	}
}

func TestNeighborhoodsChain(t *testing.T) {
	a := chain(5)
	levels := a.Neighborhoods([]int{0})
	if len(levels) != 5 {
		t.Fatalf("levels = %v, want 5 singleton levels", levels)
	}
	for i, l := range levels {
		if len(l) != 1 || l[i-i] != i {
			t.Errorf("level %d = %v, want [%d]", i, l, i)
		}
	}
}

func TestNeighborhoodsMultiOrigin(t *testing.T) {
	a := chain(5)
	levels := a.Neighborhoods([]int{0, 4})
	// N0={0,4}, N1={1,3}, N2={2}
	if len(levels) != 3 {
		t.Fatalf("levels = %v, want 3", levels)
	}
	if len(levels[0]) != 2 || len(levels[1]) != 2 || len(levels[2]) != 1 {
		t.Errorf("level sizes wrong: %v", levels)
	}
	if levels[2][0] != 2 {
		t.Errorf("middle task should be last: %v", levels)
	}
}

func TestNeighborhoodsDisconnected(t *testing.T) {
	a := New("disc")
	for i := 0; i < 4; i++ {
		a.AddTask("t", Internal, impl("dsp"))
	}
	a.AddChannel(0, 1) // component {0,1}; tasks 2,3 isolated
	levels := a.Neighborhoods([]int{0})
	var count int
	seen := make(map[int]bool)
	for _, l := range levels {
		for _, t := range l {
			if seen[t] {
				count = -999
			}
			seen[t] = true
			count++
		}
	}
	if count != 4 {
		t.Errorf("Neighborhoods must cover all tasks exactly once, got %v", levels)
	}
}

func TestFixedTasks(t *testing.T) {
	a := chain(3)
	if got := a.FixedTasks(); len(got) != 0 {
		t.Errorf("FixedTasks = %v, want none", got)
	}
	a.Tasks[1].FixedElement = 7
	if got := a.FixedTasks(); len(got) != 1 || got[0] != 1 {
		t.Errorf("FixedTasks = %v, want [1]", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := chain(3)
	a.Constraints.MinThroughput = 2.5
	b := a.Clone()
	b.Tasks[0].Implementations[0].Requires[0] = 999
	b.Channels[0].TokenSize = 999
	b.Tasks[1].FixedElement = 5
	if a.Tasks[0].Implementations[0].Requires[0] == 999 {
		t.Error("clone shares implementation requirement vectors")
	}
	if a.Channels[0].TokenSize == 999 {
		t.Error("clone shares channels")
	}
	if a.Tasks[1].FixedElement == 5 {
		t.Error("clone shares tasks")
	}
	if b.Constraints.MinThroughput != 2.5 {
		t.Error("clone lost constraints")
	}
}

func TestBeamformingShape(t *testing.T) {
	app := Beamforming(DefaultBeamforming(2))
	if err := app.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(app.Tasks) != 53 {
		t.Errorf("beamforming tasks = %d, want 53", len(app.Tasks))
	}
	dsp := 0
	for _, task := range app.Tasks {
		if task.Implementations[0].Target == "dsp" {
			dsp++
		}
	}
	if dsp != 45 {
		t.Errorf("beamforming DSP tasks = %d, want 45", dsp)
	}
	if got := app.FixedTasks(); len(got) != 1 || app.Tasks[got[0]].Name != "source" {
		t.Errorf("fixed tasks = %v, want only the source", got)
	}
	// Tree-like: every task reachable from the source.
	levels := app.Neighborhoods(app.FixedTasks())
	covered := 0
	for _, l := range levels {
		covered += len(l)
	}
	if covered != 53 {
		t.Errorf("neighborhoods cover %d tasks, want 53", covered)
	}
}

func TestBundleRoundTrip(t *testing.T) {
	app := Beamforming(DefaultBeamforming(2))
	app.Constraints.MinThroughput = 3.25
	app.Constraints.MaxLatency = 120
	b, err := Bytes(app)
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	if !IsBundle(b) {
		t.Error("IsBundle should accept encoded bundle")
	}
	got, err := FromBytes(b)
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	if got.Name != app.Name || len(got.Tasks) != len(app.Tasks) || len(got.Channels) != len(app.Channels) {
		t.Fatalf("round trip mismatch: %v vs %v", got, app)
	}
	if got.Constraints != app.Constraints {
		t.Errorf("constraints = %+v, want %+v", got.Constraints, app.Constraints)
	}
	for i, task := range app.Tasks {
		g := got.Tasks[i]
		if g.Name != task.Name || g.Kind != task.Kind || g.FixedElement != task.FixedElement {
			t.Fatalf("task %d mismatch: %+v vs %+v", i, g, task)
		}
		for j, im := range task.Implementations {
			gim := g.Implementations[j]
			if gim.Name != im.Name || gim.Target != im.Target || gim.Cost != im.Cost ||
				gim.ExecTime != im.ExecTime || !gim.Requires.Equal(im.Requires) {
				t.Fatalf("impl %d/%d mismatch: %+v vs %+v", i, j, gim, im)
			}
		}
	}
	for i, c := range app.Channels {
		if *got.Channels[i] != *c {
			t.Fatalf("channel %d mismatch: %+v vs %+v", i, got.Channels[i], c)
		}
	}
}

func TestBundleRejectsGarbage(t *testing.T) {
	if _, err := FromBytes([]byte("ELF\x7f garbage")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("garbage error = %v, want ErrBadMagic", err)
	}
	if IsBundle([]byte("EL")) {
		t.Error("short data should not be a bundle")
	}
	// Corrupt version.
	app := chain(2)
	b, err := Bytes(app)
	if err != nil {
		t.Fatal(err)
	}
	b[4] = 0xFF
	if _, err := FromBytes(b); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version error = %v, want ErrBadVersion", err)
	}
	// Truncation at every prefix must error, never panic.
	b, err = Bytes(app)
	if err != nil {
		t.Fatal(err)
	}
	for n := 5; n < len(b); n += 3 {
		if _, err := FromBytes(b[:n]); err == nil {
			t.Errorf("truncated bundle (%d bytes) decoded without error", n)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	a := New("bad")
	a.AddTask("t", Internal) // no implementations
	if _, err := Bytes(a); err == nil {
		t.Error("encoding an invalid application should fail")
	}
}
