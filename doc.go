// Package repro is a from-scratch Go reproduction of
//
//	T.D. ter Braak, P.K.F. Hölzenspies, J. Kuper, J.L. Hurink,
//	G.J.M. Smit: "Run-time Spatial Resource Management for Real-Time
//	Applications on Heterogeneous MPSoCs", DATE 2010.
//
// The public, stable API is package repro/kairos: the manager with
// functional options, pluggable per-phase strategies (Binder, Mapper,
// Router, Validator) selectable by name, a typed lifecycle event
// stream, context-aware admission, and typed sentinel errors. New
// code imports repro/kairos; the engine lives in the internal
// packages:
//
//	internal/resource    resource vectors and allocation pools
//	internal/platform    heterogeneous MPSoC model (elements, links,
//	                     virtual channels, CRISP/mesh builders,
//	                     fault injection, fragmentation metric)
//	internal/graph       applications as annotated task graphs, the
//	                     binary application-bundle format, and the
//	                     beamforming case-study generator
//	internal/appgen      the TGFF-like synthetic application generator
//	internal/knapsack    knapsack solvers (paper's O(T²) greedy + exact)
//	internal/gap         Cohen–Katzir–Raz GAP approximation
//	internal/binding     phase 1: implementation selection (regret order)
//	internal/mapping     phase 2: the paper's incremental mapping
//	                     algorithm (MapApplication, Fig. 5) — the
//	                     primary contribution
//	internal/routing     phase 3: BFS/Dijkstra routing over virtual
//	                     channels
//	internal/sdf         timed SDF graphs and self-timed state-space
//	                     throughput analysis
//	internal/validation  phase 4: constraint checking on the SDF model
//	internal/core        Kairos, the concurrent admission engine
//	                     orchestrating the four phases (platform-state
//	                     lock, batched AdmitAll, Stats counters,
//	                     strategy seams, event stream)
//	internal/experiments the parallel evaluation harness for Table I
//	                     and Figs. 7–10
//	internal/sim         the discrete-event churn simulator (Poisson
//	                     arrivals, exponential lifetimes, fault
//	                     injection, defragmentation policies)
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation at reduced scale; cmd/experiments regenerates
// them at full scale; cmd/sim drives a live manager through sustained
// churn and compares defragmentation policies. See README.md for a
// quickstart, DESIGN.md for the system inventory and concurrency
// model, and EXPERIMENTS.md for measured-vs-paper results.
package repro
