// Benchmarks regenerating the paper's evaluation (Table I and
// Figs. 7–10) plus ablations of the design choices called out in
// DESIGN.md §5. Each benchmark runs a reduced-scale version of the
// corresponding experiment per iteration and reports the headline
// quantities as custom metrics, so `go test -bench=.` reproduces the
// *shapes* the paper reports; cmd/experiments runs the full scale.
package repro_test

import (
	"context"
	"testing"

	"repro/internal/appgen"
	"repro/internal/binding"
	"repro/internal/experiments"
	"repro/internal/knapsack"
	"repro/internal/mapping"
	"repro/internal/optimal"
	"repro/internal/platform"
	"repro/internal/routing"
	"repro/internal/validation"
	"repro/kairos"
)

// benchDatasets builds reduced datasets once and caches them across
// benchmarks (building runs ~240 full allocations).
var benchDatasets []experiments.Dataset

func datasets(b *testing.B) []experiments.Dataset {
	b.Helper()
	if benchDatasets == nil {
		benchDatasets = experiments.BuildAllDatasets(40, 1, 0)
	}
	return benchDatasets
}

// BenchmarkExperiments runs the same reduced evaluation once with the
// serial harness (1 worker) and once with the parallel worker pool
// (all CPUs). Both report the identical deterministic headline
// metrics — overall success rate and failure count — so the pool's
// speedup is directly comparable against an unchanged workload
// (EXPERIMENTS.md shows the two rows matching on every metric but
// ns/op).
func BenchmarkExperiments(b *testing.B) {
	ds := datasets(b)
	proto := platform.CRISP()
	for _, v := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			var recs []experiments.Record
			for i := 0; i < b.N; i++ {
				recs = experiments.RunSequences(ds, proto, experiments.SequenceConfig{
					Weights:              mapping.WeightsBoth,
					Sequences:            2,
					Seed:                 1,
					SkipValidationTiming: true,
					Workers:              v.workers,
				})
			}
			var success int
			for _, rec := range recs {
				if rec.Success {
					success++
				}
			}
			b.ReportMetric(100*float64(success)/float64(len(recs)), "success-%")
			b.ReportMetric(float64(len(recs)-success), "failures")
			b.ReportMetric(float64(len(recs)), "attempts")
		})
	}
}

// BenchmarkAdmitReleaseSteadyState measures the pure admission hot
// path: Admit followed by Release of one filter-surviving application
// on a warm manager, so every per-admission buffer comes from the
// scratch pools and the platform returns to its starting state after
// each op. allocs/op here is what the allocation-free-hot-path work
// defends (cmd/bench tracks the same quantity across revisions with a
// CI gate; see internal/bench).
func BenchmarkAdmitReleaseSteadyState(b *testing.B) {
	proto := platform.CRISP()
	ds := experiments.BuildDataset(appgen.NewConfig(appgen.Communication, appgen.Small), 20, 8, proto, 1)
	if len(ds.Apps) == 0 {
		b.Skip("no filter-surviving app in the sample")
	}
	app := ds.Apps[0]
	k := kairos.New(platform.CRISP(),
		kairos.WithWeights(mapping.WeightsBoth),
		kairos.WithAdvisoryValidation(),
	)
	ctx := context.Background()
	// Warm the scratch pools so the steady state is what is measured.
	if adm, err := k.Admit(ctx, app); err == nil {
		_ = k.Release(adm.Instance)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adm, err := k.Admit(ctx, app)
		if err != nil {
			b.Fatalf("admission failed: %v", err)
		}
		if err := k.Release(adm.Instance); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableI regenerates the failure distribution per phase
// (paper Table I): sequential admission of each dataset in random
// order until platform saturation. Reported metrics are the routing
// failure share of the communication datasets and the binding failure
// share of the computation datasets — the two headline shapes.
func BenchmarkTableI(b *testing.B) {
	ds := datasets(b)
	proto := platform.CRISP()
	var rows []experiments.TableIRow
	for i := 0; i < b.N; i++ {
		recs := experiments.RunSequences(ds, proto, experiments.SequenceConfig{
			Weights:              mapping.WeightsBoth,
			Sequences:            2,
			Seed:                 int64(i + 1),
			SkipValidationTiming: true,
		})
		rows = experiments.TableI(ds, recs)
	}
	var commRouting, compBinding float64
	var nComm, nComp int
	for _, r := range rows {
		if r.Failures == 0 {
			continue
		}
		if r.Dataset[:4] == "Comm" {
			commRouting += r.RoutingPct
			nComm++
		} else {
			compBinding += r.BindingPct
			nComp++
		}
	}
	if nComm > 0 {
		b.ReportMetric(commRouting/float64(nComm), "comm-routing-fail-%")
	}
	if nComp > 0 {
		b.ReportMetric(compBinding/float64(nComp), "comp-binding-fail-%")
	}
}

// BenchmarkFig7 regenerates the per-phase run times of successful
// allocations grouped by task count (paper Fig. 7). The reported
// metric is the ratio of validation time to mapping time for the
// largest size bucket — the paper's headline is that validation
// dominates and scales worst.
func BenchmarkFig7(b *testing.B) {
	ds := datasets(b)
	proto := platform.CRISP()
	var points []experiments.Fig7Point
	for i := 0; i < b.N; i++ {
		recs := experiments.RunSequences(ds, proto, experiments.SequenceConfig{
			Weights:   mapping.WeightsBoth,
			Sequences: 1,
			Seed:      int64(i + 1),
		})
		points = experiments.Fig7(recs)
	}
	if len(points) > 0 {
		last := points[len(points)-1]
		if last.Mapping > 0 {
			b.ReportMetric(last.Validation/last.Mapping, "validation/mapping@max-tasks")
		}
		b.ReportMetric(last.Mapping, "mapping-µs@max-tasks")
	}
}

// benchSeries runs the Fig. 8/9 position series for one weight
// configuration and returns the series.
func benchSeries(b *testing.B, w mapping.Weights, seed int64) []experiments.SeriesPoint {
	b.Helper()
	recs := experiments.RunSequences(datasets(b), platform.CRISP(), experiments.SequenceConfig{
		Weights:              w,
		Sequences:            2,
		Seed:                 seed,
		MaxPosition:          29,
		SkipValidationTiming: true,
	})
	return experiments.PositionSeries(recs, 29)
}

// BenchmarkFig8 regenerates the hops-per-channel series (paper
// Fig. 8) for the four weight configurations. Reported metrics: late
// success rate (position ≥ 15, the paper observes it collapsing below
// 20%) and the hop premium of fragmentation-weighted over
// communication-weighted mapping.
func BenchmarkFig8(b *testing.B) {
	var comm, frag []experiments.SeriesPoint
	for i := 0; i < b.N; i++ {
		for _, wc := range experiments.WeightConfigs() {
			s := benchSeries(b, wc.Weights, int64(i+1))
			switch wc.Label {
			case "Communication":
				comm = s
			case "Fragmentation":
				frag = s
			}
		}
	}
	var commHops, fragHops, lateSucc float64
	var n int
	for i := range comm {
		if comm[i].Position >= 15 {
			lateSucc += comm[i].SuccessRate
			n++
		}
		commHops += comm[i].MeanHops
		fragHops += frag[i].MeanHops
	}
	if commHops > 0 {
		b.ReportMetric(fragHops/commHops, "frag/comm-hop-ratio")
	}
	if n > 0 {
		b.ReportMetric(lateSucc/float64(n), "late-success-%")
	}
}

// BenchmarkFig9 regenerates the external-fragmentation series (paper
// Fig. 9). Reported metrics: steady-state fragmentation (the paper
// observes convergence to ≈30%) for the "None" and "Fragmentation"
// configurations.
func BenchmarkFig9(b *testing.B) {
	var none, frag []experiments.SeriesPoint
	for i := 0; i < b.N; i++ {
		for _, wc := range experiments.WeightConfigs() {
			s := benchSeries(b, wc.Weights, int64(i+1))
			switch wc.Label {
			case "None":
				none = s
			case "Fragmentation":
				frag = s
			}
		}
	}
	tail := func(s []experiments.SeriesPoint) float64 {
		var sum float64
		var n int
		for _, pt := range s {
			if pt.Position >= 20 {
				sum += pt.MeanFrag
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	b.ReportMetric(tail(none), "none-steady-frag-%")
	b.ReportMetric(tail(frag), "fragweighted-steady-frag-%")
}

// BenchmarkFig10 regenerates the beamforming admission weight map
// (paper Fig. 10) on a coarse grid. Reported metrics: interior
// admission rate and zero-weight-border admissions (the paper reports
// zero).
func BenchmarkFig10(b *testing.B) {
	var res *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig10(experiments.Fig10Config{
			CommMax: 25, CommStep: 5, FragMax: 250, FragStep: 50,
		})
	}
	b.ReportMetric(float64(res.AdmitN)/float64(res.Total)*100, "admitted-%")
	b.ReportMetric(float64(res.ZeroWeightAdmissions()), "zero-weight-admissions")
}

// BenchmarkBeamformingCaseStudy regenerates the case study (§IV-A):
// one full allocation of the 53-task beamformer on an empty CRISP
// platform. The per-phase split is reported as metrics (the paper
// measures binding 70.4 ms, mapping 21.7 ms, routing 7.4 ms,
// validation 20.6 ms on a 200 MHz ARM926).
func BenchmarkBeamformingCaseStudy(b *testing.B) {
	var adm *kairos.Admission
	for i := 0; i < b.N; i++ {
		a, err := experiments.CaseStudy(mapping.WeightsBoth)
		if err != nil {
			b.Fatalf("case study rejected: %v", err)
		}
		adm = a
	}
	b.ReportMetric(float64(adm.Times.Binding.Microseconds()), "binding-µs")
	b.ReportMetric(float64(adm.Times.Mapping.Microseconds()), "mapping-µs")
	b.ReportMetric(float64(adm.Times.Routing.Microseconds()), "routing-µs")
	b.ReportMetric(float64(adm.Times.Validation.Microseconds()), "validation-µs")
}

// beamformingPhases prepares the case-study inputs for the per-phase
// micro-benchmarks below.
func beamformingPhases(b *testing.B) (*kairos.Manager, *kairos.Admission) {
	b.Helper()
	app, p := experiments.NewBeamforming()
	k := kairos.New(p, kairos.WithWeights(mapping.WeightsBoth))
	adm, err := k.Admit(context.Background(), app)
	if err != nil {
		b.Fatalf("beamforming admission failed: %v", err)
	}
	return k, adm
}

// BenchmarkPhaseBinding measures phase 1 alone on the beamformer.
func BenchmarkPhaseBinding(b *testing.B) {
	app, p := experiments.NewBeamforming()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binding.Bind(app, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhaseMapping measures phase 2 alone on the beamformer
// (place + rollback per iteration so the platform stays empty).
func BenchmarkPhaseMapping(b *testing.B) {
	app, p := experiments.NewBeamforming()
	bind, err := binding.Bind(app, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mapping.MapApplication(app, p, bind, mapping.Options{
			Instance: "bench", Weights: mapping.WeightsBoth,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		_ = res
		mapping.Unmap(p, "bench", app)
		b.StartTimer()
	}
}

// BenchmarkPhaseRouting measures phase 3 alone on a mapped
// beamformer.
func BenchmarkPhaseRouting(b *testing.B) {
	k, adm := beamformingPhases(b)
	p := k.Platform()
	routing.ReleaseAll(p, adm.Routes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		routes, err := routing.RouteAll(adm.App, adm.Assignment, p, routing.BFS{})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		routing.ReleaseAll(p, routes)
		b.StartTimer()
	}
}

// BenchmarkPhaseValidation measures phase 4 alone on a routed
// beamformer — the phase the paper identifies as the scalability
// problem.
func BenchmarkPhaseValidation(b *testing.B) {
	k, adm := beamformingPhases(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := validation.Validate(adm.App, adm.Binding, adm.Assignment,
			adm.Routes, k.Platform(), validation.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouterAblation revisits the paper's §II claim that BFS
// routing shows "no noticeable performance differences ... compared to
// Dijkstra's algorithm": both routers route one dataset sequence; the
// metric is the success-rate difference.
func BenchmarkRouterAblation(b *testing.B) {
	ds := datasets(b)
	proto := platform.CRISP()
	for _, r := range []routing.Router{routing.BFS{}, routing.Dijkstra{}} {
		b.Run(r.Name(), func(b *testing.B) {
			var success, total int
			for i := 0; i < b.N; i++ {
				recs := experiments.RunSequences(ds, proto, experiments.SequenceConfig{
					Weights:              mapping.WeightsBoth,
					Sequences:            1,
					Seed:                 int64(i + 1),
					Router:               r,
					SkipValidationTiming: true,
				})
				for _, rec := range recs {
					total++
					if rec.Success {
						success++
					}
				}
			}
			if total > 0 {
				b.ReportMetric(100*float64(success)/float64(total), "success-%")
			}
		})
	}
}

// BenchmarkKnapsackAblation compares the paper's O(T²) greedy
// knapsack against the exact branch-and-bound inside the full mapping
// phase (DESIGN.md §5.1: quality and run time of GAP follow the
// knapsack solver).
func BenchmarkKnapsackAblation(b *testing.B) {
	for _, solver := range []knapsack.Solver{knapsack.Greedy{}, knapsack.Exact{}} {
		b.Run(solver.Name(), func(b *testing.B) {
			app, p := experiments.NewBeamforming()
			bind, err := binding.Bind(app, p)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := mapping.MapApplication(app, p, bind, mapping.Options{
					Instance: "bench", Weights: mapping.WeightsBoth, Solver: solver,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				_ = res
				mapping.Unmap(p, "bench", app)
				b.StartTimer()
			}
		})
	}
}

// BenchmarkExtraRingsAblation ablates the "single additional search
// step" of §III-B: with 0 extra rings the candidate set is minimal
// (best for communication distance only); with more rings the
// fragmentation objective has room to act at extra GAP cost.
func BenchmarkExtraRingsAblation(b *testing.B) {
	for _, extra := range []int{-1, 1, 2} { // -1 encodes "0 rings" (0 means default)
		name := map[int]string{-1: "rings0", 1: "rings1", 2: "rings2"}[extra]
		b.Run(name, func(b *testing.B) {
			app, p := experiments.NewBeamforming()
			bind, err := binding.Bind(app, p)
			if err != nil {
				b.Fatal(err)
			}
			opts := mapping.Options{
				Instance: "bench", Weights: mapping.WeightsBoth,
				ExtraRings: extra, // -1 = no extra expansion step
			}
			var gapCalls int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := mapping.MapApplication(app, p, bind, opts)
				if err != nil {
					b.Fatal(err)
				}
				gapCalls = res.GAPInvocations
				b.StopTimer()
				mapping.Unmap(p, "bench", app)
				b.StartTimer()
			}
			b.ReportMetric(float64(gapCalls), "gap-invocations")
		})
	}
}

// BenchmarkCrossPackagePenaltyAblation ablates the weighted-distance
// extension (DESIGN.md): with penalty 1 (pure hop distances) mapping
// leaks across packages and the beamformer's routing load explodes.
func BenchmarkCrossPackagePenaltyAblation(b *testing.B) {
	for _, penalty := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "hop-distance", 4: "penalty4", 8: "penalty8"}[penalty], func(b *testing.B) {
			app, proto := experiments.NewBeamforming()
			var cross int
			admitted := 0
			for i := 0; i < b.N; i++ {
				p := proto.Clone()
				bind, err := binding.Bind(app, p)
				if err != nil {
					b.Fatal(err)
				}
				res, err := mapping.MapApplication(app, p, bind, mapping.Options{
					Instance: "bench", Weights: mapping.WeightsBoth,
					CrossPackagePenalty: penalty,
				})
				if err != nil {
					continue
				}
				cross = 0
				for _, ch := range app.Channels {
					if p.Element(res.Assignment[ch.Src]).Package != p.Element(res.Assignment[ch.Dst]).Package {
						cross++
					}
				}
				if _, err := routing.RouteAll(app, res.Assignment, p, routing.BFS{}); err == nil {
					admitted++
				}
			}
			b.ReportMetric(float64(cross), "cross-package-channels")
			b.ReportMetric(100*float64(admitted)/float64(b.N), "admitted-%")
		})
	}
}

// BenchmarkMappingQualityVsOptimal quantifies the run-time heuristic
// against the exact branch-and-bound mapper (the "ILP formulation"
// comparison the paper defers to future work, §V): random small
// applications on a mesh, evaluated under the communication-distance
// objective. Reported metric: mean heuristic/optimal cost ratio
// (1.0 = optimal).
func BenchmarkMappingQualityVsOptimal(b *testing.B) {
	var ratioSum float64
	var samples int
	for i := 0; i < b.N; i++ {
		for seed := int64(0); seed < 10; seed++ {
			p := platform.Mesh(4, 4, 4)
			app := appgen.Dataset(appgen.NewConfig(appgen.Communication, appgen.Small), 1, 100+seed)[0]
			bind, err := binding.Bind(app, p)
			if err != nil {
				continue
			}
			solver, err := optimal.New(app, p, bind, optimal.DefaultObjective())
			if err != nil {
				continue
			}
			opt, err := solver.Solve()
			if err != nil {
				continue
			}
			res, err := mapping.MapApplication(app, p, bind, mapping.Options{
				Instance: "q", Weights: mapping.WeightsCommunication,
			})
			if err != nil {
				continue
			}
			ratioSum += solver.CostOf(res.Assignment) / opt.Cost
			samples++
			mapping.Unmap(p, "q", app)
		}
	}
	if samples > 0 {
		b.ReportMetric(ratioSum/float64(samples), "heuristic/optimal-cost")
		b.ReportMetric(float64(samples)/float64(b.N), "samples/op")
	}
}

// BenchmarkValidationFastVsExact compares the state-space exploration
// against the maximum-cycle-ratio fast path (future work [18]: "making
// the validation approach a lot faster") on the beamforming layout.
func BenchmarkValidationFastVsExact(b *testing.B) {
	k, adm := beamformingPhases(b)
	for _, mode := range []struct {
		name string
		opts validation.Options
	}{
		{"exact", validation.Options{}},
		{"fast", validation.Options{Fast: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var rep *validation.Report
			for i := 0; i < b.N; i++ {
				r, err := validation.Validate(adm.App, adm.Binding, adm.Assignment,
					adm.Routes, k.Platform(), mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				rep = r
			}
			b.ReportMetric(rep.Throughput, "iterations/time-unit")
		})
	}
}

// BenchmarkAdmissionByProfile measures one full admission (all four
// phases) for a representative app of each generator profile/size.
func BenchmarkAdmissionByProfile(b *testing.B) {
	for _, prof := range []appgen.Profile{appgen.Communication, appgen.Computation} {
		for _, size := range []appgen.Size{appgen.Small, appgen.Medium, appgen.Large} {
			b.Run(prof.String()+"-"+size.String(), func(b *testing.B) {
				proto := platform.CRISP()
				// Use the first generated app that survives the
				// empty-platform filter (large communication apps
				// often do not — that is Table I's point).
				ds := experiments.BuildDataset(appgen.NewConfig(prof, size), 20, 7, proto, 0)
				if len(ds.Apps) == 0 {
					b.Skip("no filter-surviving app in the sample")
				}
				app := ds.Apps[0]
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					p := proto.Clone()
					k := kairos.New(p,
						kairos.WithWeights(mapping.WeightsBoth),
						kairos.WithAdvisoryValidation(),
					)
					b.StartTimer()
					if _, err := k.Admit(context.Background(), app); err != nil {
						b.Fatalf("admission of the filter-surviving app failed: %v", err)
					}
				}
			})
		}
	}
}

// BenchmarkFirstFitBaseline compares the paper's GAP-based mapping
// against a naive nearest-first-fit baseline on the beamformer.
// Metric: cross-package channels (bridge pressure) of each mapper —
// the quantitative argument for the assignment-problem formulation.
func BenchmarkFirstFitBaseline(b *testing.B) {
	type mapFn func(*platform.Platform) (int, error)
	app, proto := experiments.NewBeamforming()
	cross := func(p *platform.Platform, assignment []int) int {
		n := 0
		for _, ch := range app.Channels {
			if p.Element(assignment[ch.Src]).Package != p.Element(assignment[ch.Dst]).Package {
				n++
			}
		}
		return n
	}
	for _, v := range []struct {
		name string
		run  mapFn
	}{
		{"firstfit", func(p *platform.Platform) (int, error) {
			bind, err := binding.Bind(app, p)
			if err != nil {
				return 0, err
			}
			res, err := mapping.FirstFit(app, p, bind, "ff")
			if err != nil {
				return 0, err
			}
			return cross(p, res.Assignment), nil
		}},
		{"mapapplication", func(p *platform.Platform) (int, error) {
			bind, err := binding.Bind(app, p)
			if err != nil {
				return 0, err
			}
			res, err := mapping.MapApplication(app, p, bind, mapping.Options{
				Instance: "gap", Weights: mapping.WeightsBoth,
			})
			if err != nil {
				return 0, err
			}
			return cross(p, res.Assignment), nil
		}},
	} {
		b.Run(v.name, func(b *testing.B) {
			var crossed int
			for i := 0; i < b.N; i++ {
				n, err := v.run(proto.Clone())
				if err != nil {
					b.Fatal(err)
				}
				crossed = n
			}
			b.ReportMetric(float64(crossed), "cross-package-channels")
		})
	}
}
